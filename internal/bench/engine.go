package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/engine"
	"github.com/sram-align/xdropipu/internal/metrics"
	"github.com/sram-align/xdropipu/internal/synth"
	"github.com/sram-align/xdropipu/internal/workload"
)

// EngineBenchSchema versions the BENCH_engine.json layout. v2 added the
// dedup/cache section (hit rate, dedup ratio, duplicate-heavy speedup);
// v3 added the traceback section (traceback-on vs score-only Mcells/s
// and peak traceback bytes); v4 added the faults section (throughput
// under injected transient fault rates with retries on); v5 added the
// kernel_tiers section (int16 vs int32 throughput per variant on a
// short-band and a wide-band regime, with tier counters); v6 added the
// arena_spine section (throughput and link bytes across slab layouts,
// resident vs spill-before-every-job, bit-identity verified in-bench);
// v7 added the traceback_fastpath section (score-gated replay and fused
// single-pass recording: Mcells/s at cutoff off/p50/p95 for both trace
// modes on a small-band workload, bit-identity verified in-bench).
const EngineBenchSchema = "xdropipu-bench-engine/v7"

// VariantThroughput is one kernel variant's host-measured throughput.
type VariantThroughput struct {
	// Name is the core algorithm ("restricted2", "standard3", "affine").
	Name string `json:"name"`
	// McellsPerSec is computed DP cells over host wall time.
	McellsPerSec float64 `json:"mcells_per_sec"`
	// Cells is the computed cell count behind the measurement.
	Cells int64 `json:"cells"`
}

// EngineThroughput is the engine's host-measured throughput at one
// concurrency level.
type EngineThroughput struct {
	// Submitters is the concurrent client count.
	Submitters int `json:"submitters"`
	// Jobs is the total submissions across all clients.
	Jobs int `json:"jobs"`
	// JobsPerSec is completed submissions over host wall time.
	JobsPerSec float64 `json:"jobs_per_sec"`
	// McellsPerSec is computed DP cells over host wall time.
	McellsPerSec float64 `json:"mcells_per_sec"`
	// WallSeconds is the host wall time for the whole burst.
	WallSeconds float64 `json:"wall_seconds"`
}

// DedupThroughput measures duplicate-extension elimination and the
// cross-job result cache on a duplicate-heavy workload: the same jobs run
// against a plain engine and a WithResultCache engine.
type DedupThroughput struct {
	// DupFactor is how many times each comparison is duplicated within a
	// job (cross-job duplication comes from resubmitting the dataset).
	DupFactor int `json:"dup_factor"`
	// Jobs is the submissions per engine.
	Jobs int `json:"jobs"`
	// BaselineJobsPerSec and DedupJobsPerSec are completed submissions
	// over host wall time, dedup/cache off vs on.
	BaselineJobsPerSec float64 `json:"baseline_jobs_per_sec"`
	DedupJobsPerSec    float64 `json:"dedup_jobs_per_sec"`
	// Speedup is DedupJobsPerSec / BaselineJobsPerSec.
	Speedup float64 `json:"speedup"`
	// DedupRatio is comparisons per unique extension within one job
	// (≥ 1; 4 means 4× duplication fully collapsed).
	DedupRatio float64 `json:"dedup_ratio"`
	// CacheHitRate is hits/(hits+misses) across the cached engine's
	// lifetime.
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// TracebackThroughput measures the cost and footprint of the two-pass
// traceback: the same plan run score-only and with CIGAR emission.
type TracebackThroughput struct {
	// ScoreOnlyMcellsPerSec and TracebackMcellsPerSec are computed DP
	// cells over host wall time with traceback off vs on (the on run
	// pays the recording replay, so the ratio tracks the two-pass cost).
	ScoreOnlyMcellsPerSec float64 `json:"score_only_mcells_per_sec"`
	TracebackMcellsPerSec float64 `json:"traceback_mcells_per_sec"`
	// PeakTracebackBytes is Report.PeakTracebackBytes of the traceback
	// run: the largest single-extension direction trace, bounded by the
	// live-window band.
	PeakTracebackBytes int `json:"peak_traceback_bytes"`
	// TracebackBytes is the total recorded trace storage of the run.
	TracebackBytes int64 `json:"traceback_bytes"`
}

// TraceFastpathCutoff is one gate setting's measurement in the
// traceback-fastpath bench: the same workload run with CIGAR emission
// under the given score cutoff, once per trace mode.
type TraceFastpathCutoff struct {
	// Cutoff names the gate setting ("off", "p50", "p95" — percentiles
	// of the workload's score distribution).
	Cutoff string `json:"cutoff"`
	// MinScore is the TraceMinScore value the percentile resolved to
	// (0 for "off").
	MinScore int `json:"min_score"`
	// ReplayMcellsPerSec and FusedMcellsPerSec are computed DP cells
	// over host wall time under TraceModeReplay vs TraceModeFused.
	ReplayMcellsPerSec float64 `json:"replay_mcells_per_sec"`
	FusedMcellsPerSec  float64 `json:"fused_mcells_per_sec"`
	// TracedExtensions and SkippedExtensions are the gate counters of
	// the run (identical across modes; disjoint, summing to every
	// extension).
	TracedExtensions  int `json:"traced_extensions"`
	SkippedExtensions int `json:"skipped_extensions"`
}

// TracebackFastpathThroughput measures the score-gated traceback fast
// path and the fused single-pass recording on a small-band, hit-sparse
// workload. Every gated or fused run is verified bit-identical in-bench:
// above-cutoff results against the ungated replay run, below-cutoff
// results against the score-only run.
type TracebackFastpathThroughput struct {
	// ScoreOnlyMcellsPerSec is the traceback-off baseline on the same
	// workload — the ceiling the gated path approaches as the cutoff
	// rises.
	ScoreOnlyMcellsPerSec float64 `json:"score_only_mcells_per_sec"`
	// Cutoffs holds one row per gate setting (off, p50, p95).
	Cutoffs []TraceFastpathCutoff `json:"cutoffs"`
}

// TierVariantThroughput is one kernel variant's int16-vs-int32
// measurement on one workload regime.
type TierVariantThroughput struct {
	// Name is the core algorithm ("restricted2", "standard3", "affine").
	Name string `json:"name"`
	// WideMcellsPerSec and NarrowMcellsPerSec are computed DP cells over
	// host wall time on the int32 tier vs the int16 tier.
	WideMcellsPerSec   float64 `json:"wide_mcells_per_sec"`
	NarrowMcellsPerSec float64 `json:"narrow_mcells_per_sec"`
	// Speedup is NarrowMcellsPerSec / WideMcellsPerSec. Scalar int16 Go
	// executes the same op count as int32, so this hovers near 1; the
	// narrow tier's delivered win is the halved DP working set and the
	// larger sequences the SRAM planner admits per tile.
	Speedup float64 `json:"speedup"`
	// NarrowExtensions and PromotedExtensions are the narrow run's tier
	// counters: extensions completed in int16 vs saturated-and-re-run.
	NarrowExtensions   int `json:"narrow_extensions"`
	PromotedExtensions int `json:"promoted_extensions"`
}

// TierRegimeThroughput is one workload regime's per-variant tier
// measurements.
type TierRegimeThroughput struct {
	// Regime names the workload shape ("short-band": 2kb reads, ~15%
	// error, X=15; "wide-band": ~3kb reads, ~4% error, X=400).
	Regime string `json:"regime"`
	// Variants holds one narrow-vs-wide measurement per kernel variant.
	Variants []TierVariantThroughput `json:"variants"`
}

// KernelTiersThroughput measures the int16 kernel tier against the int32
// baseline across workload regimes.
type KernelTiersThroughput struct {
	Regimes []TierRegimeThroughput `json:"regimes"`
}

// SpineLayoutThroughput is one slab layout's measurement: the same
// workload packed into Slabs slabs, run resident or with the whole spine
// spilled to disk before every job.
type SpineLayoutThroughput struct {
	// Slabs is the spine's actual slab count for this layout.
	Slabs int `json:"slabs"`
	// Spill is true when every slab was spilled before each job, so each
	// job pays the fault-in path for the slab sets its batches pin.
	Spill bool `json:"spill"`
	// JobsPerSec is completed driver runs over host wall time.
	JobsPerSec float64 `json:"jobs_per_sec"`
	// McellsPerSec is computed DP cells over host wall time.
	McellsPerSec float64 `json:"mcells_per_sec"`
	// HostBytesIn is the modeled link traffic of one job — slab-layout
	// independent by construction, so every layout row must agree.
	HostBytesIn int64 `json:"host_bytes_in"`
	// Faults is the arena's lifetime fault-in count after the runs
	// (0 for resident layouts).
	Faults int64 `json:"faults"`
}

// ArenaSpineThroughput measures the multi-slab arena spine: identical
// content across slab layouts and residency modes, every run verified
// bit-identical to the single-slab resident baseline before any number
// is reported.
type ArenaSpineThroughput struct {
	// Jobs is the driver runs per layout.
	Jobs int `json:"jobs"`
	// Layouts holds one row per (slab count, spill) combination.
	Layouts []SpineLayoutThroughput `json:"layouts"`
}

// FaultRateThroughput is the engine's throughput under one injected
// transient-fault rate with retries enabled.
type FaultRateThroughput struct {
	// Rate is the per-execution transient fault probability.
	Rate float64 `json:"rate"`
	// JobsPerSec is completed submissions over host wall time.
	JobsPerSec float64 `json:"jobs_per_sec"`
	// McellsPerSec is computed DP cells over host wall time.
	McellsPerSec float64 `json:"mcells_per_sec"`
	// Retries is Stats.Retries after the run — re-executions paid.
	Retries int64 `json:"retries"`
	// FaultsInjected is the plan's lifetime injection count.
	FaultsInjected int64 `json:"faults_injected"`
}

// FaultsThroughput measures graceful degradation under fault injection:
// the same jobs run at increasing transient fault rates with per-batch
// retry enabled, every job still completing bit-identically.
type FaultsThroughput struct {
	// Jobs is the submissions per rate.
	Jobs int `json:"jobs"`
	// Rates holds one measurement per injected fault rate (0 first, the
	// fault-free baseline).
	Rates []FaultRateThroughput `json:"rates"`
}

// EngineBenchResult is the machine-readable BENCH_engine.json payload:
// the per-variant kernel throughput plus engine throughput under
// concurrent submitters, the dedup/cache measurement and the traceback
// cost, tracked across PRs.
type EngineBenchResult struct {
	Schema     string               `json:"schema"`
	Scale      int                  `json:"scale"`
	SizeFactor float64              `json:"size_factor"`
	Variants   []VariantThroughput  `json:"variants"`
	Engine     []EngineThroughput   `json:"engine"`
	Dedup      *DedupThroughput     `json:"dedup"`
	Traceback  *TracebackThroughput `json:"traceback"`
	Faults     *FaultsThroughput    `json:"faults"`
	// TracebackFastpath measures the score gate and fused recording.
	TracebackFastpath *TracebackFastpathThroughput `json:"traceback_fastpath"`
	// KernelTiers compares the int16 tier to the int32 baseline.
	KernelTiers *KernelTiersThroughput `json:"kernel_tiers"`
	// ArenaSpine measures slab-layout and spill costs on the arena spine.
	ArenaSpine *ArenaSpineThroughput `json:"arena_spine"`
}

// engineBenchDataset is the common workload: dense enough to produce
// several batches per job so concurrent jobs really interleave.
func (o Options) engineBenchDataset(seedOff int64) *workload.Dataset {
	return o.fig7Dataset(fmt.Sprintf("engine-%d", seedOff), 120_000, 900, 90+seedOff)
}

// EngineBench measures kernel-variant and engine throughput on the host
// clock. Unlike the modeled-time experiments, these numbers track the
// repository's real execution speed across PRs.
func EngineBench(opt Options) (*EngineBenchResult, error) {
	opt = opt.withDefaults()
	res := &EngineBenchResult{
		Schema:     EngineBenchSchema,
		Scale:      opt.Scale,
		SizeFactor: opt.SizeFactor,
	}

	// Kernel variants, one plan each, timed end to end on the host.
	d := opt.engineBenchDataset(0)
	for _, algo := range []core.Algo{core.AlgoRestricted2, core.AlgoStandard3, core.AlgoAffine} {
		cfg := opt.driverConfig(15, 256, 1)
		cfg.Kernel.Params.Algo = algo
		if algo == core.AlgoAffine {
			cfg.Kernel.Params.GapOpen = -2
		}
		start := time.Now()
		rep, err := driver.Run(d, cfg)
		if err != nil {
			return nil, fmt.Errorf("variant %s: %w", algo, err)
		}
		el := time.Since(start).Seconds()
		res.Variants = append(res.Variants, VariantThroughput{
			Name:         algo.String(),
			McellsPerSec: float64(rep.Cells) / 1e6 / el,
			Cells:        rep.Cells,
		})
	}

	// Engine throughput: bursts of concurrent submitters against one
	// persistent engine. Jobs per level are fixed at full size so levels
	// compare queueing behaviour, but scale down with SizeFactor so the
	// smoke suite (and its -race rerun) stays cheap.
	jobsPerLevel := opt.n(16)
	if jobsPerLevel > 16 {
		jobsPerLevel = 16
	}
	unique := make([]*workload.Dataset, min(4, jobsPerLevel))
	for i := range unique {
		unique[i] = opt.engineBenchDataset(int64(1 + i))
	}
	datasets := make([]*workload.Dataset, jobsPerLevel)
	for i := range datasets {
		datasets[i] = unique[i%len(unique)]
	}
	for _, submitters := range []int{1, 4, 16} {
		cfg := opt.driverConfig(15, 256, 1)
		cfg.MaxBatchJobs = 64 // several batches per job → real interleaving
		eng := engine.New(engine.WithDriverConfig(cfg), engine.WithQueueDepth(submitters))
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			cells    int64
			firstErr error
		)
		start := time.Now()
		for s := 0; s < submitters; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := s; i < jobsPerLevel; i += submitters {
					job, err := eng.Submit(context.Background(), datasets[i])
					if err == nil {
						var rep *driver.Report
						rep, err = job.Wait(context.Background())
						if err == nil {
							mu.Lock()
							cells += rep.Cells
							mu.Unlock()
							continue
						}
					}
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("submitter %d: %w", s, err)
					}
					mu.Unlock()
					return
				}
			}(s)
		}
		wg.Wait()
		el := time.Since(start).Seconds()
		if err := eng.Close(); err != nil {
			return nil, err
		}
		if firstErr != nil {
			return nil, firstErr
		}
		res.Engine = append(res.Engine, EngineThroughput{
			Submitters:   submitters,
			Jobs:         jobsPerLevel,
			JobsPerSec:   float64(jobsPerLevel) / el,
			McellsPerSec: float64(cells) / 1e6 / el,
			WallSeconds:  el,
		})
	}

	dedup, err := dedupBench(opt)
	if err != nil {
		return nil, err
	}
	res.Dedup = dedup

	tb, err := tracebackBench(opt)
	if err != nil {
		return nil, err
	}
	res.Traceback = tb

	tf, err := tracebackFastpathBench(opt)
	if err != nil {
		return nil, err
	}
	res.TracebackFastpath = tf

	fl, err := faultsBench(opt)
	if err != nil {
		return nil, err
	}
	res.Faults = fl

	kt, err := kernelTiersBench(opt)
	if err != nil {
		return nil, err
	}
	res.KernelTiers = kt

	sp, err := arenaSpineBench(opt)
	if err != nil {
		return nil, err
	}
	res.ArenaSpine = sp
	return res, nil
}

// arenaSpineBench measures the multi-slab spine: the same workload packed
// into ~1, ~4 and ~16 slabs, run resident and with every slab spilled to
// disk before each job. Slab layout must cost nothing on the link
// (HostBytesIn identical across layouts) and nothing in results (every
// run verified bit-identical to the single-slab resident baseline); the
// spill rows price the fault-in path of batch-level slab pinning.
func arenaSpineBench(opt Options) (*ArenaSpineThroughput, error) {
	jobs := opt.n(4)
	if jobs > 4 {
		jobs = 4
	}
	if jobs < 2 {
		jobs = 2
	}
	base := opt.engineBenchDataset(11)
	cfg := opt.driverConfig(15, 256, 1)
	cfg.MaxBatchJobs = 64
	golden, err := driver.Run(base, cfg)
	if err != nil {
		return nil, fmt.Errorf("spine bench (golden): %w", err)
	}
	longest, total := 0, 0
	for _, s := range base.Sequences {
		longest = max(longest, len(s))
		total += len(s)
	}

	out := &ArenaSpineThroughput{Jobs: jobs}
	for _, slabs := range []int{1, 4, 16} {
		slabCap := max(longest, total/slabs+1)
		for _, spill := range []bool{false, true} {
			a := workload.NewArena(0, len(base.Sequences))
			a.SetMaxSlabBytes(slabCap)
			for _, s := range base.Sequences {
				a.Append(s)
			}
			d := a.NewStreamingDataset(base.Name, workload.PlanOf(base.Comparisons), base.Protein)
			var dir string
			if spill {
				if dir, err = os.MkdirTemp("", "xdropipu-spine-"); err != nil {
					return nil, fmt.Errorf("spine bench: %w", err)
				}
				a.EnableSpill(dir)
				a.Seal()
			}
			run := func() (int64, int64, error) {
				var cells, bytesIn int64
				for i := 0; i < jobs; i++ {
					if spill {
						if _, err := a.Spill(); err != nil {
							return 0, 0, fmt.Errorf("spine bench (%d slabs): %w", a.NumSlabs(), err)
						}
					}
					rep, err := driver.Run(d, cfg)
					if err != nil {
						return 0, 0, fmt.Errorf("spine bench (%d slabs, spill %v): %w", a.NumSlabs(), spill, err)
					}
					for k := range rep.Results {
						if rep.Results[k] != golden.Results[k] {
							return 0, 0, fmt.Errorf("spine bench (%d slabs, spill %v): result %d diverged from the single-slab baseline",
								a.NumSlabs(), spill, k)
						}
					}
					if rep.HostBytesIn != golden.HostBytesIn {
						return 0, 0, fmt.Errorf("spine bench (%d slabs, spill %v): HostBytesIn %d, baseline %d — slab layout leaked into link traffic",
							a.NumSlabs(), spill, rep.HostBytesIn, golden.HostBytesIn)
					}
					cells += rep.Cells
					bytesIn = rep.HostBytesIn
				}
				return cells, bytesIn, nil
			}
			start := time.Now()
			cells, bytesIn, err := run()
			el := time.Since(start).Seconds()
			st := a.Residency()
			if spill {
				if cerr := a.Close(); err == nil && cerr != nil {
					err = fmt.Errorf("spine bench: %w", cerr)
				}
				os.RemoveAll(dir)
			}
			if err != nil {
				return nil, err
			}
			out.Layouts = append(out.Layouts, SpineLayoutThroughput{
				Slabs:        a.NumSlabs(),
				Spill:        spill,
				JobsPerSec:   float64(jobs) / el,
				McellsPerSec: float64(cells) / 1e6 / el,
				HostBytesIn:  bytesIn,
				Faults:       st.Faults,
			})
		}
	}
	return out, nil
}

// kernelTiersBench times every kernel variant on the int32 and int16
// tiers across two regimes — the short-band shape (noisy 2kb reads,
// X=15) where antidiagonals are a handful of cells, and the wide-band
// shape (cleaner ~3kb reads, X=400) where long runs keep the unrolled
// lanes full. The int16 measurement runs TierAuto: with unit DNA match
// scores the headroom proof holds for every extension, so the narrow
// kernels execute throughout under narrow-only SRAM buffers — the
// shippable configuration (TierNarrow's wide-fallback buffers would not
// even fit tile SRAM for affine at these read lengths, which is itself
// the admission story). Narrow-tier results are verified bit-identical
// to the wide run before any number is reported.
func kernelTiersBench(opt Options) (*KernelTiersThroughput, error) {
	regimes := []struct {
		name string
		d    *workload.Dataset
		x    int
	}{
		// Read lengths are capped in both regimes so the affine wide
		// run — 7δ int32 cells across six threads — still fits tile
		// SRAM at any bench scale; the int16 tier needs half that.
		{"short-band", synth.Reads(synth.ReadsSpec{
			Name: "tiers-short", GenomeLen: opt.n(100_000), Coverage: 10,
			MeanReadLen: 2000, MinReadLen: 700, MaxReadLen: 3000,
			Errors:  synth.MutationProfile{Sub: 0.05, Ins: 0.05, Del: 0.05},
			SeedLen: 17, MinOverlap: 500, Seed: opt.Seed + 31,
		}), 15},
		{"wide-band", synth.Reads(synth.ReadsSpec{
			Name: "tiers-wide", GenomeLen: opt.n(100_000), Coverage: 10,
			MeanReadLen: 2800, MinReadLen: 1200, MaxReadLen: 3200,
			Errors:  synth.MutationProfile{Sub: 0.013, Ins: 0.013, Del: 0.014},
			SeedLen: 17, MinOverlap: 1000, Seed: opt.Seed + 37,
		}), 400},
	}
	out := &KernelTiersThroughput{}
	for _, reg := range regimes {
		rt := TierRegimeThroughput{Regime: reg.name}
		for _, algo := range []core.Algo{core.AlgoRestricted2, core.AlgoStandard3, core.AlgoAffine} {
			run := func(tier core.Tier) (*driver.Report, float64, error) {
				cfg := opt.driverConfig(reg.x, 256, 1)
				cfg.Kernel.Params.Algo = algo
				if algo == core.AlgoAffine {
					cfg.Kernel.Params.GapOpen = -2
				}
				cfg.KernelTier = tier
				start := time.Now()
				rep, err := driver.Run(reg.d, cfg)
				return rep, time.Since(start).Seconds(), err
			}
			wide, elWide, err := run(core.TierWide)
			if err != nil {
				return nil, fmt.Errorf("tiers bench (%s/%s wide): %w", reg.name, algo, err)
			}
			narrow, elNarrow, err := run(core.TierAuto)
			if err != nil {
				return nil, fmt.Errorf("tiers bench (%s/%s narrow): %w", reg.name, algo, err)
			}
			for k := range narrow.Results {
				if narrow.Results[k] != wide.Results[k] {
					return nil, fmt.Errorf("tiers bench (%s/%s): result %d diverged between tiers", reg.name, algo, k)
				}
			}
			if narrow.NarrowExtensions == 0 {
				return nil, fmt.Errorf("tiers bench (%s/%s): auto tier executed no narrow kernels", reg.name, algo)
			}
			vt := TierVariantThroughput{
				Name:               algo.String(),
				WideMcellsPerSec:   float64(wide.Cells) / 1e6 / elWide,
				NarrowMcellsPerSec: float64(narrow.Cells) / 1e6 / elNarrow,
				NarrowExtensions:   narrow.NarrowExtensions,
				PromotedExtensions: narrow.PromotedExtensions,
			}
			if vt.WideMcellsPerSec > 0 {
				vt.Speedup = vt.NarrowMcellsPerSec / vt.WideMcellsPerSec
			}
			rt.Variants = append(rt.Variants, vt)
		}
		out.Regimes = append(out.Regimes, rt)
	}
	return out, nil
}

// faultsBench runs the same jobs at increasing injected transient-fault
// rates with retries enabled and measures the throughput cost of riding
// out the failures. Results are verified bit-identical to the fault-free
// run at every rate — fault tolerance that silently corrupted reports
// would be worse than none.
func faultsBench(opt Options) (*FaultsThroughput, error) {
	jobs := opt.n(6)
	if jobs > 6 {
		jobs = 6
	}
	if jobs < 2 {
		jobs = 2
	}
	d := opt.engineBenchDataset(7)
	golden, err := driver.Run(d, func() driver.Config {
		cfg := opt.driverConfig(15, 256, 1)
		cfg.MaxBatchJobs = 64
		return cfg
	}())
	if err != nil {
		return nil, fmt.Errorf("faults bench (golden): %w", err)
	}

	out := &FaultsThroughput{Jobs: jobs}
	for _, rate := range []float64{0, 0.05, 0.20} {
		cfg := opt.driverConfig(15, 256, 1)
		cfg.MaxBatchJobs = 64
		eopts := []engine.Option{
			engine.WithDriverConfig(cfg),
			engine.WithRetry(8, 0),
			engine.WithRetryBackoff(200*time.Microsecond, 2*time.Millisecond),
		}
		var plan *driver.FaultPlan
		if rate > 0 {
			plan = driver.NewFaultPlan(42, driver.FaultSpec{TransientRate: rate})
			eopts = append(eopts, engine.WithFaultPlan(plan))
		}
		eng := engine.New(eopts...)
		var cells int64
		start := time.Now()
		for i := 0; i < jobs; i++ {
			job, err := eng.Submit(context.Background(), d)
			if err != nil {
				eng.Close()
				return nil, fmt.Errorf("faults bench (rate %.2f): %w", rate, err)
			}
			rep, err := job.Wait(context.Background())
			if err != nil {
				eng.Close()
				return nil, fmt.Errorf("faults bench (rate %.2f): %w", rate, err)
			}
			if len(rep.Results) != len(golden.Results) {
				eng.Close()
				return nil, fmt.Errorf("faults bench (rate %.2f): %d results, want %d", rate, len(rep.Results), len(golden.Results))
			}
			for k := range rep.Results {
				if rep.Results[k] != golden.Results[k] {
					eng.Close()
					return nil, fmt.Errorf("faults bench (rate %.2f): result %d diverged from fault-free run", rate, k)
				}
			}
			cells += rep.Cells
		}
		el := time.Since(start).Seconds()
		st := eng.Stats()
		if err := eng.Close(); err != nil {
			return nil, err
		}
		out.Rates = append(out.Rates, FaultRateThroughput{
			Rate:           rate,
			JobsPerSec:     float64(jobs) / el,
			McellsPerSec:   float64(cells) / 1e6 / el,
			Retries:        st.Retries,
			FaultsInjected: st.FaultsInjected,
		})
	}
	return out, nil
}

// tracebackBench times the same workload score-only and with the
// two-pass traceback enabled, and reports the peak trace footprint the
// traceback run measured.
func tracebackBench(opt Options) (*TracebackThroughput, error) {
	d := opt.engineBenchDataset(9)
	run := func(traceback bool) (*driver.Report, float64, error) {
		cfg := opt.driverConfig(15, 256, 1)
		cfg.Traceback = traceback
		start := time.Now()
		rep, err := driver.Run(d, cfg)
		return rep, time.Since(start).Seconds(), err
	}
	repOff, elOff, err := run(false)
	if err != nil {
		return nil, fmt.Errorf("traceback bench (score-only): %w", err)
	}
	repOn, elOn, err := run(true)
	if err != nil {
		return nil, fmt.Errorf("traceback bench (traceback): %w", err)
	}
	return &TracebackThroughput{
		ScoreOnlyMcellsPerSec: float64(repOff.Cells) / 1e6 / elOff,
		TracebackMcellsPerSec: float64(repOn.Cells) / 1e6 / elOn,
		PeakTracebackBytes:    repOn.PeakTracebackBytes,
		TracebackBytes:        repOn.TracebackBytes,
	}, nil
}

// tracebackFastpathBench measures the score-gated traceback fast path
// and the fused single-pass recording. The workload is small-band (δb=64,
// reads capped at ~900 bp so forced fusion's per-thread arenas stay
// within tile SRAM) and hit-sparse under the higher cutoffs: at p95 only
// one in twenty comparisons pays for a CIGAR, so throughput should
// approach the score-only ceiling. Every run is verified bit-identical
// before any number is reported: above-cutoff results against the
// ungated replay run, below-cutoff results against the score-only run —
// which also pins replay and fused to identical output at every cutoff.
func tracebackFastpathBench(opt Options) (*TracebackFastpathThroughput, error) {
	d := synth.Reads(synth.ReadsSpec{
		Name: "trace-fastpath", GenomeLen: opt.n(120_000), Coverage: 12,
		MeanReadLen: 700, MinReadLen: 300, MaxReadLen: 900,
		Errors:  synth.MutationProfile{Sub: 0.02, Ins: 0.02, Del: 0.02, Burst: 0.003, BurstLen: 24},
		SeedLen: 17, MinOverlap: 200, Seed: opt.Seed + 41,
	})
	// Racy work stealing duplicates a unit's execution on exact counter
	// ties, inflating that result's trace stats — and the tie pattern
	// depends on per-unit instruction costs, which differ between replay
	// (two passes) and fused (one). That schedule noise is documented,
	// fingerprinted behaviour, but it would confound the cross-mode
	// bit-identity oracle here, so the fastpath bench runs statically
	// scheduled.
	mkCfg := func(minScore int, mode core.TraceMode) driver.Config {
		cfg := opt.driverConfig(15, 64, 1)
		cfg.Kernel.WorkStealing = false
		cfg.Traceback = true
		cfg.TraceMinScore = minScore
		cfg.TraceMode = mode
		return cfg
	}
	scoreCfg := opt.driverConfig(15, 64, 1)
	scoreCfg.Kernel.WorkStealing = false

	start := time.Now()
	scoreOnly, err := driver.Run(d, scoreCfg)
	elOff := time.Since(start).Seconds()
	if err != nil {
		return nil, fmt.Errorf("trace fastpath bench (score-only): %w", err)
	}
	golden, err := driver.Run(d, mkCfg(0, core.TraceModeReplay))
	if err != nil {
		return nil, fmt.Errorf("trace fastpath bench (golden): %w", err)
	}

	scores := make([]int, len(scoreOnly.Results))
	for i, r := range scoreOnly.Results {
		scores[i] = r.Score
	}
	sort.Ints(scores)
	out := &TracebackFastpathThroughput{
		ScoreOnlyMcellsPerSec: float64(scoreOnly.Cells) / 1e6 / elOff,
	}
	for _, cut := range []struct {
		name  string
		score int
	}{
		{"off", 0},
		{"p50", scores[len(scores)/2]},
		{"p95", scores[len(scores)*95/100]},
	} {
		row := TraceFastpathCutoff{Cutoff: cut.name, MinScore: cut.score}
		for _, mode := range []core.TraceMode{core.TraceModeReplay, core.TraceModeFused} {
			start := time.Now()
			rep, err := driver.Run(d, mkCfg(cut.score, mode))
			el := time.Since(start).Seconds()
			if err != nil {
				return nil, fmt.Errorf("trace fastpath bench (%s/%s): %w", cut.name, mode, err)
			}
			for k := range rep.Results {
				want := golden.Results[k]
				if cut.score > 0 && want.Score < cut.score {
					want = scoreOnly.Results[k]
				}
				if rep.Results[k] != want {
					return nil, fmt.Errorf("trace fastpath bench (%s/%s): result %d diverged from the oracle",
						cut.name, mode, k)
				}
			}
			if rep.TracedExtensions+rep.TraceSkippedExtensions != 2*len(rep.Results) {
				return nil, fmt.Errorf("trace fastpath bench (%s/%s): gate counters %d+%d are not a partition of %d extensions",
					cut.name, mode, rep.TracedExtensions, rep.TraceSkippedExtensions, 2*len(rep.Results))
			}
			mcells := float64(rep.Cells) / 1e6 / el
			if mode == core.TraceModeReplay {
				row.ReplayMcellsPerSec = mcells
				row.TracedExtensions = rep.TracedExtensions
				row.SkippedExtensions = rep.TraceSkippedExtensions
			} else {
				row.FusedMcellsPerSec = mcells
			}
		}
		out.Cutoffs = append(out.Cutoffs, row)
	}
	return out, nil
}

// duplicateComparisons returns a view of d with every comparison repeated
// factor times — the duplicate-heavy shape overlap pipelines produce when
// candidate sets are resubmitted.
func duplicateComparisons(d *workload.Dataset, factor int) *workload.Dataset {
	cmps := make([]workload.Comparison, 0, len(d.Comparisons)*factor)
	for f := 0; f < factor; f++ {
		cmps = append(cmps, d.Comparisons...)
	}
	return &workload.Dataset{
		Name: fmt.Sprintf("%s-dup%d", d.Name, factor), Sequences: d.Sequences,
		Comparisons: cmps, Protein: d.Protein,
	}
}

// dedupBench times a duplicate-heavy workload (4× duplicated comparisons,
// the same dataset resubmitted per job) against a plain engine and a
// WithResultCache engine, and reports the throughput gain plus the dedup
// ratio and cache hit rate behind it.
func dedupBench(opt Options) (*DedupThroughput, error) {
	const dupFactor = 4
	jobs := opt.n(8)
	if jobs > 8 {
		jobs = 8
	}
	if jobs < 2 {
		jobs = 2
	}
	d := duplicateComparisons(opt.engineBenchDataset(5), dupFactor)

	run := func(cached bool) (jobsPerSec float64, st engine.Stats, rep *driver.Report, err error) {
		cfg := opt.driverConfig(15, 256, 1)
		cfg.MaxBatchJobs = 64
		eopts := []engine.Option{engine.WithDriverConfig(cfg)}
		if cached {
			eopts = append(eopts, engine.WithResultCache(0))
		}
		eng := engine.New(eopts...)
		defer eng.Close()
		start := time.Now()
		for i := 0; i < jobs; i++ {
			job, err := eng.Submit(context.Background(), d)
			if err != nil {
				return 0, engine.Stats{}, nil, err
			}
			if rep, err = job.Wait(context.Background()); err != nil {
				return 0, engine.Stats{}, nil, err
			}
		}
		el := time.Since(start).Seconds()
		return float64(jobs) / el, eng.Stats(), rep, nil
	}

	base, _, _, err := run(false)
	if err != nil {
		return nil, err
	}
	dedup, st, rep, err := run(true)
	if err != nil {
		return nil, err
	}
	dt := &DedupThroughput{
		DupFactor:          dupFactor,
		Jobs:               jobs,
		BaselineJobsPerSec: base,
		DedupJobsPerSec:    dedup,
		CacheHitRate:       metrics.HitRate(st.CacheHits, st.CacheMisses),
	}
	if base > 0 {
		dt.Speedup = dedup / base
	}
	if rep != nil && rep.UniqueExtensions > 0 {
		dt.DedupRatio = float64(len(rep.Results)) / float64(rep.UniqueExtensions)
	}
	return dt, nil
}

// VerifyEngineJSON checks a BENCH_engine.json payload against the current
// schema: the version string must match and the layout must strict-decode
// (unknown or missing sections fail), so CI catches drift between the
// committed artifact and the code that regenerates it.
func VerifyEngineJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var res EngineBenchResult
	if err := dec.Decode(&res); err != nil {
		return fmt.Errorf("bench: engine JSON does not match the current layout: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("bench: engine JSON has trailing data after the payload")
	}
	if res.Schema != EngineBenchSchema {
		return fmt.Errorf("bench: engine JSON schema %q, want %q (regenerate with benchtables -json)", res.Schema, EngineBenchSchema)
	}
	if len(res.Variants) == 0 || len(res.Engine) == 0 || res.Dedup == nil ||
		res.Traceback == nil || res.Faults == nil || res.KernelTiers == nil ||
		res.ArenaSpine == nil || res.TracebackFastpath == nil {
		return fmt.Errorf("bench: engine JSON is missing sections (variants/engine/dedup/traceback/traceback_fastpath/faults/kernel_tiers/arena_spine)")
	}
	if len(res.TracebackFastpath.Cutoffs) != 3 {
		return fmt.Errorf("bench: traceback_fastpath has %d cutoff rows, want 3 (off/p50/p95)", len(res.TracebackFastpath.Cutoffs))
	}
	return nil
}

// WriteEngineJSON runs EngineBench and writes the payload as indented
// JSON (the BENCH_engine.json artifact).
func WriteEngineJSON(opt Options, w io.Writer) error {
	res, err := EngineBench(opt)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// EngineExp renders the engine benchmark as text tables (the "engine"
// experiment of the harness).
func EngineExp(opt Options) error {
	opt = opt.withDefaults()
	res, err := EngineBench(opt)
	if err != nil {
		return err
	}
	vt := metrics.NewTable("Engine — kernel variant throughput (host-measured)",
		"variant", "Mcells/s")
	for _, v := range res.Variants {
		vt.AddRow(v.Name, v.McellsPerSec)
	}
	vt.Render(opt.W)
	et := metrics.NewTable("Engine — concurrent submitter throughput (host-measured)",
		"submitters", "jobs", "jobs/s", "Mcells/s", "wall s")
	for _, e := range res.Engine {
		et.AddRow(e.Submitters, e.Jobs, e.JobsPerSec, e.McellsPerSec, e.WallSeconds)
	}
	et.AddNote("host throughput, not modeled time; tracked across PRs via BENCH_engine.json")
	et.Render(opt.W)
	if d := res.Dedup; d != nil {
		dt := metrics.NewTable("Engine — dedup + result cache on a duplicate-heavy workload",
			"dup", "jobs", "base jobs/s", "dedup jobs/s", "speedup", "dedup ratio", "hit rate")
		dt.AddRow(d.DupFactor, d.Jobs, d.BaselineJobsPerSec, d.DedupJobsPerSec,
			metrics.Ratio(d.Speedup), d.DedupRatio, metrics.Percent(d.CacheHitRate*100))
		dt.AddNote("WithResultCache vs plain engine, same %d× duplicated dataset resubmitted per job", d.DupFactor)
		dt.Render(opt.W)
	}
	if tb := res.Traceback; tb != nil {
		tt := metrics.NewTable("Engine — two-pass traceback cost (host-measured)",
			"score-only Mcells/s", "traceback Mcells/s", "peak trace B", "total trace B")
		tt.AddRow(tb.ScoreOnlyMcellsPerSec, tb.TracebackMcellsPerSec,
			tb.PeakTracebackBytes, tb.TracebackBytes)
		tt.AddNote("peak trace is per extension, bounded by the live-window band (2 bits/cell)")
		tt.Render(opt.W)
	}
	if tf := res.TracebackFastpath; tf != nil {
		ft := metrics.NewTable("Engine — score-gated traceback fast path (host-measured)",
			"cutoff", "min score", "replay Mcells/s", "fused Mcells/s", "traced", "skipped")
		for _, c := range tf.Cutoffs {
			ft.AddRow(c.Cutoff, c.MinScore, c.ReplayMcellsPerSec, c.FusedMcellsPerSec,
				c.TracedExtensions, c.SkippedExtensions)
		}
		ft.AddNote("score-only ceiling %.1f Mcells/s; replay and fused verified bit-identical to the ungated/score-only oracle at every cutoff",
			tf.ScoreOnlyMcellsPerSec)
		ft.Render(opt.W)
	}
	if fl := res.Faults; fl != nil {
		ft := metrics.NewTable("Engine — throughput under injected transient faults (retries on)",
			"fault rate", "jobs", "jobs/s", "Mcells/s", "retries", "injected")
		for _, r := range fl.Rates {
			ft.AddRow(metrics.Percent(r.Rate*100), fl.Jobs, r.JobsPerSec,
				r.McellsPerSec, r.Retries, r.FaultsInjected)
		}
		ft.AddNote("every job verified bit-identical to the fault-free run; retries ride WithRetry(8, 0)")
		ft.Render(opt.W)
	}
	if kt := res.KernelTiers; kt != nil {
		tt := metrics.NewTable("Engine — int16 kernel tier vs int32 baseline (host-measured)",
			"regime", "variant", "wide Mcells/s", "narrow Mcells/s", "speedup", "narrow ext", "promoted")
		for _, reg := range kt.Regimes {
			for _, v := range reg.Variants {
				tt.AddRow(reg.Regime, v.Name, v.WideMcellsPerSec, v.NarrowMcellsPerSec,
					metrics.Ratio(v.Speedup), v.NarrowExtensions, v.PromotedExtensions)
			}
		}
		tt.AddNote("results verified bit-identical across tiers; the narrow win is the halved DP working set, not scalar throughput")
		tt.Render(opt.W)
	}
	if sp := res.ArenaSpine; sp != nil {
		st := metrics.NewTable("Engine — arena spine across slab layouts (host-measured)",
			"slabs", "spill", "jobs", "jobs/s", "Mcells/s", "link B in", "faults")
		for _, l := range sp.Layouts {
			st.AddRow(l.Slabs, l.Spill, sp.Jobs, l.JobsPerSec, l.McellsPerSec, l.HostBytesIn, l.Faults)
		}
		st.AddNote("identical content repacked per layout; results and link bytes verified identical to the single-slab resident baseline")
		st.Render(opt.W)
	}
	return nil
}
