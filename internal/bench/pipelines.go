package bench

import (
	"math/rand"

	"github.com/sram-align/xdropipu/internal/backend"
	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/elba"
	"github.com/sram-align/xdropipu/internal/metrics"
	"github.com/sram-align/xdropipu/internal/pastis"
	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/synth"
)

// ELBA reproduces the §6.3.1 comparison: the ELBA alignment phase run on
// the IPU system (1→8 devices), one CPU node and a 4-GPU node, on
// synthetic E. coli-like reads, at X=15 and k-mer length 31 — plus the
// assembly outcome as a sanity check that every backend produces the same
// contigs.
func ELBA(opt Options) error {
	opt = opt.withDefaults()
	// Pipelines are compared at a deeper uniform platform scale so the
	// scaled workload saturates every device the way the paper's 568 k
	// comparisons saturate a full IPU (≈386 jobs per tile); an
	// undersubscribed BSP device pays makespan raggedness no real run
	// pays.
	opt.Scale *= 8
	rng := rand.New(rand.NewSource(opt.Seed + 31))
	genomeLen := opt.n(700_000)
	genome := synth.RandDNA(rng, genomeLen)
	prof := synth.HiFiDNA()
	var reads [][]byte
	// Tiled reads with jitter: guaranteed coverage, realistic overlaps.
	readLen, stride := 2600, 900
	for off := 0; off+readLen <= genomeLen; off += stride + rng.Intn(300) {
		reads = append(reads, prof.Apply(rng, genome[off:off+readLen]))
	}

	x := 15
	tab := metrics.NewTable("§6.3.1 — ELBA alignment phase (E. coli-like, X=15, k=31)",
		"backend", "align time", "speedup vs CPU", "comparisons", "contigs", "N50")
	type run struct {
		name string
		bk   backend.Backend
	}
	bow := opt.bowModel()
	kernel := kernelConfig(x, 512)
	runs := []run{
		{"CPU 1 node (seqan)", &backend.CPU{Model: opt.cpuModel(), X: x}},
		{"GPU ×4 (logan)", &backend.GPU{Model: opt.gpuModel(), GPUs: 4, X: x}},
	}
	for _, n := range []int{1, 2, 4, 8} {
		cfg := opt.driverConfig(x, 512, n)
		cfg.Model = bow
		cfg.Kernel = kernel
		cfg.TilesPerIPU = bow.Tiles
		// Keep the batch queue deep enough for eight devices.
		cfg.MaxBatchJobs = 40
		runs = append(runs, run{
			name: metricsName("IPU", n),
			bk:   &backend.IPU{Cfg: cfg},
		})
	}

	var cpuTime float64
	var firstContigs [][]byte
	for i, r := range runs {
		res, err := elba.Assemble(reads, elba.Config{K: 31, Backend: r.bk})
		if err != nil {
			return err
		}
		if i == 0 {
			cpuTime = res.AlignSeconds
			firstContigs = res.Contigs
		}
		speed := "-"
		if i > 0 && res.AlignSeconds > 0 {
			speed = metrics.Ratio(cpuTime / res.AlignSeconds)
		}
		tab.AddRow(r.name, metrics.Seconds(res.AlignSeconds), speed,
			res.OverlapStats.Comparisons, len(res.Contigs), elba.N50(res.Contigs))
		if len(res.Contigs) != len(firstContigs) {
			tab.AddNote("WARNING: %s assembled %d contigs, CPU %d", r.name, len(res.Contigs), len(firstContigs))
		}
	}
	tab.AddNote("paper (E. coli): CPU 11.61s, GPU×4 52.14s, IPU 7.4s→2.2s on 1→8 devices")
	tab.Render(opt.W)
	return nil
}

func metricsName(base string, n int) string {
	if n == 1 {
		return base + " ×1"
	}
	return base + " ×" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// PASTIS reproduces the §6.3.2 comparison: the PASTIS alignment phase
// (X=49, gap −2, BLOSUM62, k=6, two seeds per pair) on CPU versus IPU —
// the paper measures 44.9 s vs 9.6 s (4.7×) on its 500 k-protein subset.
func PASTIS(opt Options) error {
	opt = opt.withDefaults()
	// Deeper uniform platform scale, as in the ELBA experiment.
	opt.Scale *= 8
	d, _ := synth.ProteinFamilies(synth.ProteinFamiliesSpec{
		Families:         opt.n(260),
		MembersPerFamily: 4,
		MeanLen:          320,
		MutRate:          0.18,
		Seed:             opt.Seed + 32,
	})

	x := 49
	cpuBk := &backend.CPU{Model: opt.cpuModel(), X: x}
	ipuCfg := opt.driverConfig(x, 512, 1)
	ipuCfg.Model = opt.bowModel()
	ipuCfg.Kernel.Params = core.Params{Scorer: scoring.Blosum62, Gap: -2, X: x, DeltaB: 512}
	ipuBk := &backend.IPU{Cfg: ipuCfg}

	tab := metrics.NewTable("§6.3.2 — PASTIS alignment phase (X=49, BLOSUM62, k=6)",
		"backend", "align time", "speedup", "candidate pairs", "homolog pairs", "families>1")
	var cpuTime float64
	for i, bk := range []backend.Backend{cpuBk, ipuBk} {
		res, err := pastis.Search(d.Sequences, pastis.Config{Backend: bk})
		if err != nil {
			return err
		}
		if i == 0 {
			cpuTime = res.AlignSeconds
		}
		speed := "-"
		if i > 0 && res.AlignSeconds > 0 {
			speed = metrics.Ratio(cpuTime / res.AlignSeconds)
		}
		fams := 0
		for _, f := range res.Families {
			if len(f) > 1 {
				fams++
			}
		}
		tab.AddRow(bk.Name(), metrics.Seconds(res.AlignSeconds), speed,
			res.OverlapStats.Comparisons, len(res.Pairs), fams)
	}
	tab.AddNote("paper: CPU 44.9s vs IPU 9.6s (4.7×) on 500k metaclust proteins")
	tab.Render(opt.W)
	return nil
}
