package bench

import (
	"fmt"

	"github.com/sram-align/xdropipu/internal/baselines"
	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/metrics"
)

// Fig5 reproduces the headline GCUPS comparison: our IPU implementation
// versus the SeqAn and ksw2 CPU baselines and the LOGAN GPU baseline, on
// the four standalone datasets for X ∈ {5, 10, 15, 20}. Per §5.1 the IPU
// time base is on-device cycles, the GPU's is kernel time and the CPUs'
// alignment compute.
func Fig5(opt Options) error {
	opt = opt.withDefaults()
	cpuM := opt.cpuModel()
	gpuM := opt.gpuModel()
	for _, x := range []int{5, 10, 15, 20} {
		tab := metrics.NewTable(
			fmt.Sprintf("Fig. 5 — GCUPS at X=%d (scaled-device values; ×%d ≈ full machines)", x, opt.Scale),
			"dataset", "ours", "seqan", "ksw2", "logan", "ours/seqan", "ours/logan")
		for _, d := range opt.StandaloneDatasets() {
			rep, err := driver.Run(d, opt.driverConfig(x, 1024, 1))
			if err != nil {
				return err
			}
			ours := rep.GCUPS(rep.DeviceComputeSeconds)
			seqan := baselines.SeqAn(d, x, cpuM).GCUPS()
			ksw2 := baselines.Ksw2(d, x, cpuM).GCUPS()
			logan := baselines.Logan(d, x, gpuM, 1).GCUPS()
			tab.AddRow(d.Name, ours, seqan, ksw2, logan,
				metrics.Ratio(ours/seqan), metrics.Ratio(ours/logan))
		}
		tab.Render(opt.W)
	}
	return nil
}
