package bench

import (
	"fmt"

	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/metrics"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/synth"
	"github.com/sram-align/xdropipu/internal/workload"
)

// Full-machine constants used for tile-proportional link scaling.
var (
	platformLink  = platform.GC200.HostLinkBytesPerSec
	platformTiles = platform.GC200.Tiles
)

// fig7Dataset builds a dense many-batch workload: strong scaling is only
// observable when the batch queue is much longer than the device fleet,
// as the paper's 816/387-batch runs are (§6.2).
func (o Options) fig7Dataset(name string, genome, mean int, seedOff int64) *workload.Dataset {
	d := synth.Reads(synth.ReadsSpec{
		Name:        name,
		GenomeLen:   o.n(genome),
		Coverage:    12,
		MeanReadLen: mean, MinReadLen: mean / 3, MaxReadLen: mean * 5 / 2,
		// Noisier, burstier long-read errors than HiFi: PacBio-class
		// indel bursts are what widen the live band on real data (the
		// paper measures δw up to 656), setting the compute-to-transfer
		// balance of Fig. 7.
		Errors:     synth.MutationProfile{Sub: 0.02, Ins: 0.02, Del: 0.02, Burst: 0.003, BurstLen: 24},
		SeedLen:    17,
		MinOverlap: mean / 4,
		Seed:       o.Seed + seedOff,
	})
	return d
}

// Fig7 reproduces the strong-scaling study: alignment execution time from
// 1 to 32 IPU devices for X ∈ {5, 10, 15, 20, 50} on ecoli100- and
// celegans-like dense workloads, with graph-based multi-comparison
// partitioning enabled ("multi") and disabled ("single"). One plan per
// (dataset, X, mode) is re-scheduled across device counts, like re-running
// the paper's driver with a different NUMBER_IPUS.
//
// Per §4.3 the partitions are tile-sized (the paper packs up to 41
// sequences per tile); one tile per scaled device keeps the batch queue
// long relative to the fleet, which is the regime Fig. 7 operates in.
func Fig7(opt Options) error {
	opt = opt.withDefaults()
	ipus := []int{1, 2, 4, 8, 16, 32}
	xs := []int{5, 10, 15, 20, 50}
	datasets := []*workload.Dataset{
		opt.fig7Dataset("ecoli100", 140_000, 900, 71),
		opt.fig7Dataset("celegans", 200_000, 1100, 72),
	}
	for _, d := range datasets {
		header := []string{"IPUs"}
		for _, x := range xs {
			header = append(header,
				fmt.Sprintf("X=%d multi", x), fmt.Sprintf("X=%d single", x))
		}
		tab := metrics.NewTable(
			fmt.Sprintf("Fig. 7 — strong scaling on %s (%d comparisons, execution time)",
				d.Name, len(d.Comparisons)),
			header...)
		cells := make(map[[3]int]float64) // (xIdx, ipuIdx, mode) → seconds
		batchCounts := make(map[int][2]int)
		for xi, x := range xs {
			for mode, part := range []bool{true, false} {
				cfg := opt.driverConfig(x, 512, 1)
				// One tile per scaled device with tile-sized partitions
				// reproduces the paper's queue-depth regime (≈27–41
				// comparisons per tile-slot, hundreds of batches).
				cfg.TilesPerIPU = 1
				cfg.SeqBudget = 40 * 1024
				cfg.SpreadFactor = 300
				// The scaled datasets use ~4× shorter reads than the
				// paper's, so tile SRAM scales alongside to preserve
				// the sequences-per-tile ratio...
				cfg.Model.SRAMPerTile = 156 * 1024
				cfg.Model.CodeReserve = 18 * 1024
				// ...and the host link keeps the paper's tiles-per-link
				// ratio (one 100 Gb/s link shared by up to 32 full
				// IPUs), so the contention regime matches.
				cfg.Model.HostLinkBytesPerSec =
					platformLink * 1 / float64(platformTiles)
				cfg.Partition = part
				plan, err := driver.NewPlan(d, cfg)
				if err != nil {
					return err
				}
				bc := batchCounts[xi]
				bc[mode] = plan.Batches()
				batchCounts[xi] = bc
				for ni, n := range ipus {
					cells[[3]int{xi, ni, mode}] = plan.Schedule(n).WallSeconds
				}
			}
		}
		for ni, n := range ipus {
			row := []any{n}
			for xi := range xs {
				row = append(row,
					metrics.Seconds(cells[[3]int{xi, ni, 0}]),
					metrics.Seconds(cells[[3]int{xi, ni, 1}]))
			}
			tab.AddRow(row...)
		}
		x10 := indexOf(xs, 10)
		tab.AddNote("batches at X=10: %d multi vs %d single (paper: 387 vs 816 on ecoli100)",
			batchCounts[x10][0], batchCounts[x10][1])
		tab.AddNote("partitioning speedup at X=10: %.2f× on 1 IPU, %.2f× on 32 IPUs (paper: 1.46× → 3.59×)",
			cells[[3]int{x10, 0, 1}]/cells[[3]int{x10, 0, 0}],
			cells[[3]int{x10, len(ipus) - 1, 1}]/cells[[3]int{x10, len(ipus) - 1, 0}])
		x50 := indexOf(xs, 50)
		tab.AddNote("X=50 scaling 1→16 IPUs: %.1f× multi (paper: near-linear up to 16)",
			cells[[3]int{x50, 0, 0}]/cells[[3]int{x50, 4, 0}])
		tab.Render(opt.W)
	}
	return nil
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return 0
}
