package bench

import (
	"github.com/sram-align/xdropipu/internal/synth"
	"github.com/sram-align/xdropipu/internal/workload"
)

// The four evaluation datasets of Table 2, reproduced at reduced scale.
// Comparison counts are sized to saturate the scaled device (tiles ×
// threads × a few units each); read lengths are ~2.5–5× shorter than the
// paper's so a full harness run stays within a test budget. Length
// *distributions* (fixed-length synthetic vs log-normal reads),
// seed-position spread and error profiles match the paper's descriptions
// (§5.2); EXPERIMENTS.md records the mapping.

// Simulated85 mirrors simulated85: equal-length pairs, 15 % uniform
// error, centred seeds, no sequence reuse.
func (o Options) Simulated85() *workload.Dataset {
	d := synth.UniformPairs(synth.UniformPairsSpec{
		Count:     o.n(2400),
		Length:    2000,
		ErrorRate: 0.15,
		SeedLen:   17,
		Seed:      o.Seed + 1,
	})
	d.Name = "simulated85"
	return d
}

// Ecoli mirrors the E. coli 29x row: long reads, moderate comparison
// volume, long-tailed lengths.
func (o Options) Ecoli() *workload.Dataset {
	d := synth.Reads(synth.ReadsSpec{
		Name:        "ecoli",
		GenomeLen:   o.n(1_000_000),
		Coverage:    10,
		MeanReadLen: 2900, MinReadLen: 600, MaxReadLen: 6000,
		Errors:         synth.HiFiDNA(),
		SeedLen:        17,
		MinOverlap:     700,
		MaxComparisons: o.n(2600),
		Seed:           o.Seed + 2,
	})
	return d
}

// Ecoli100 mirrors the E. coli 100x row: deeper coverage, shorter reads,
// many more comparisons.
func (o Options) Ecoli100() *workload.Dataset {
	d := synth.Reads(synth.ReadsSpec{
		Name:        "ecoli100",
		GenomeLen:   o.n(600_000),
		Coverage:    30,
		MeanReadLen: 1450, MinReadLen: 300, MaxReadLen: 3300,
		Errors:         synth.HiFiDNA(),
		SeedLen:        17,
		MinOverlap:     350,
		MaxComparisons: o.n(5200),
		Seed:           o.Seed + 3,
	})
	return d
}

// Elegans mirrors the C. elegans row: the largest genome, long reads.
func (o Options) Elegans() *workload.Dataset {
	d := synth.Reads(synth.ReadsSpec{
		Name:        "celegans",
		GenomeLen:   o.n(1_600_000),
		Coverage:    10,
		MeanReadLen: 2900, MinReadLen: 700, MaxReadLen: 6000,
		Errors:         synth.HiFiDNA(),
		SeedLen:        17,
		MinOverlap:     700,
		MaxComparisons: o.n(2800),
		Seed:           o.Seed + 4,
	})
	return d
}

// StandaloneDatasets returns the four Table 2 datasets in paper order.
func (o Options) StandaloneDatasets() []*workload.Dataset {
	return []*workload.Dataset{o.Simulated85(), o.Ecoli(), o.Ecoli100(), o.Elegans()}
}
