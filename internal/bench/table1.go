package bench

import (
	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/metrics"
	"github.com/sram-align/xdropipu/internal/workload"
)

// Table1 reproduces the optimisation ablation of Table 1: starting from a
// single tile with one thread, each row enables the next implementation
// optimisation of §4.1 and reports on-device time, GCUPS, and the speedup
// over the previous row and in total — for the 15 %-error synthetic data
// and the ELBA E. coli-like data, as the paper does.
func Table1(opt Options) error {
	opt = opt.withDefaults()
	x := 15

	type row struct {
		name string
		mut  func(*driver.Config)
	}
	fullTiles := opt.ipuModel().Tiles
	rows := []row{
		{"Single tile", func(c *driver.Config) {
			c.TilesPerIPU = 1
			c.Kernel.Threads = 1
			c.Kernel.LRSplit = false
			c.Kernel.WorkStealing = false
			c.Kernel.DualIssue = false
		}},
		{"Scale to all tiles", func(c *driver.Config) {
			c.Kernel.Threads = 1
			c.Kernel.LRSplit = false
			c.Kernel.WorkStealing = false
			c.Kernel.DualIssue = false
		}},
		{"Use 6 threads", func(c *driver.Config) {
			c.Kernel.LRSplit = false
			c.Kernel.WorkStealing = false
			c.Kernel.DualIssue = false
		}},
		{"LR splitting", func(c *driver.Config) {
			c.Kernel.WorkStealing = false
			c.Kernel.DualIssue = false
		}},
		{"Work-stealing", func(c *driver.Config) {
			c.Kernel.DualIssue = false
		}},
		{"Dual issue", func(c *driver.Config) {}},
	}

	datasets := []*workload.Dataset{opt.Table1Synthetic(), opt.Table1Ecoli()}
	for _, d := range datasets {
		tab := metrics.NewTable("Table 1 — "+d.Name+" (X=15, "+opt.ipuModel().Name+")",
			"optimisation", "time", "GCUPS", "to-prev", "total")
		var first, prev float64
		for i, r := range rows {
			cfg := opt.driverConfig(x, 256, 1)
			cfg.TilesPerIPU = fullTiles
			r.mut(&cfg)
			rep, err := driver.Run(d, cfg)
			if err != nil {
				return err
			}
			secs := rep.DeviceComputeSeconds
			gcups := rep.GCUPS(secs)
			if i == 0 {
				first, prev = secs, secs
				tab.AddRow(r.name, metrics.Seconds(secs), gcups)
			} else {
				tab.AddRow(r.name, metrics.Seconds(secs), gcups,
					ratio(prev, secs), ratio(first, secs))
				prev = secs
			}
		}
		tab.AddNote("platform scale 1/%d; GCUPS are scaled-device values (×%d for full-machine estimates)",
			opt.Scale, opt.Scale)
		tab.Render(opt.W)
	}
	return nil
}

func ratio(a, b float64) string {
	if b <= 0 {
		return "-"
	}
	return metrics.Ratio(a / b)
}

// Table1Synthetic is the ablation's synthetic dataset (smaller than
// Simulated85 because the single-tile row serialises everything).
func (o Options) Table1Synthetic() *workload.Dataset {
	d := o.withDefaults()
	s := d.Simulated85()
	if len(s.Comparisons) > d.n(1800) {
		s.Comparisons = s.Comparisons[:d.n(1800)]
	}
	s.Name = "simulated85"
	return s
}

// Table1Ecoli is the ablation's real-data analogue. It is sized to about
// five comparisons per tile — the regime the paper's tiles operate in
// ("only 5 comparisons ... have the memory", §4.1.2), where LR splitting
// and work stealing earn their keep.
func (o Options) Table1Ecoli() *workload.Dataset {
	d := o.withDefaults()
	e := d.Ecoli()
	limit := d.n(5 * d.ipuModel().Tiles)
	if len(e.Comparisons) > limit {
		e.Comparisons = e.Comparisons[:limit]
	}
	e.Name = "elba-ecoli"
	return e
}

// Races reproduces the §4.1.3 measurement: racy lock-free stealing versus
// eventual work stealing with the thread-unique busy wait. Uniform-cost
// units maximise tie pressure — without variance, deterministic
// instruction latencies lock tied threads into perpetual joint execution.
func Races(opt Options) error {
	opt = opt.withDefaults()
	d := opt.Simulated85()
	// Duplicate one comparison so every unit costs exactly the same —
	// maximal tie pressure for the deterministic counters. The dataset is
	// arena-backed, so replace Comparisons with a fresh slice (a [:0]
	// refill would scribble over the plan's shared cached rows).
	base := d.Comparisons[0]
	cmps := make([]workload.Comparison, opt.n(600))
	for i := range cmps {
		cmps[i] = base
	}
	d.Comparisons = cmps
	tab := metrics.NewTable("§4.1.3 — work-stealing races",
		"strategy", "races", "steals", "duplicated work", "alignments")
	for _, busy := range []bool{false, true} {
		cfg := opt.driverConfig(15, 256, 1)
		// Few tiles → long shared work lists → constant stealing.
		cfg.TilesPerIPU = max(1, len(d.Comparisons)/24)
		cfg.Kernel.BusyWaitVariance = busy
		rep, err := driver.Run(d, cfg)
		if err != nil {
			return err
		}
		name := "racy stealing"
		if busy {
			name = "eventual (busy-wait variance)"
		}
		dup := "-"
		if rep.StealOps > 0 {
			dup = metrics.Percent(100 * float64(rep.Races) / float64(rep.StealOps))
		}
		tab.AddRow(name, rep.Races, rep.StealOps, dup, len(d.Comparisons))
	}
	tab.AddNote("paper: 16K races reduced to 18 over 1.13M alignments")
	tab.Render(opt.W)
	return nil
}

// Partition reproduces the §6.2 batch-reduction measurement: graph-based
// multi-comparison partitioning versus single-comparison transfer.
func Partition(opt Options) error {
	opt = opt.withDefaults()
	tab := metrics.NewTable("§6.2 — graph partitioning effect",
		"dataset", "batches single", "batches multi", "reduction", "reuse", "bytes single", "bytes multi")
	for _, d := range []*workload.Dataset{opt.Ecoli100(), opt.Elegans()} {
		var batches [2]int
		var bytes [2]int64
		var reuse float64
		for i, part := range []bool{false, true} {
			cfg := opt.driverConfig(10, 256, 1)
			// Few tiles force multi-batch schedules at this workload
			// size, the regime where batch counts are comparable to
			// the paper's.
			cfg.TilesPerIPU = 8
			cfg.Partition = part
			plan, err := driver.NewPlan(d, cfg)
			if err != nil {
				return err
			}
			rep := plan.Schedule(1)
			batches[i] = rep.Batches
			bytes[i] = rep.HostBytesIn
			if part {
				reuse = rep.ReuseFactor
			}
		}
		red := 0.0
		if batches[0] > 0 {
			red = 100 * (1 - float64(batches[1])/float64(batches[0]))
		}
		tab.AddRow(d.Name, batches[0], batches[1],
			metrics.Percent(red), reuse, bytes[0], bytes[1])
	}
	tab.AddNote("paper: −52%% batches on ecoli100, −44%% on celegans")
	tab.Render(opt.W)
	return nil
}
