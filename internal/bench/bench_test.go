package bench

import (
	"bytes"
	"strings"
	"testing"
)

// smokeOptions keeps every experiment small enough for unit testing.
func smokeOptions(buf *bytes.Buffer) Options {
	return Options{W: buf, Scale: 32, SizeFactor: 0.08, Seed: 7}
}

// TestExperimentsSmoke runs every registered experiment at miniature size
// and checks it renders a non-empty table without error.
func TestExperimentsSmoke(t *testing.T) {
	for _, r := range Experiments() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := r.Run(smokeOptions(&buf)); err != nil {
				t.Fatalf("%s: %v", r.Name, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", r.Name)
			}
		})
	}
}

// TestEngineJSONRoundTrip pins the BENCH_engine.json contract: a
// freshly generated payload must pass VerifyEngineJSON, and schema drift
// or truncated sections must fail it — the checks CI's -checkjson gate
// relies on.
func TestEngineJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEngineJSON(smokeOptions(&bytes.Buffer{}), &buf); err != nil {
		t.Fatal(err)
	}
	if err := VerifyEngineJSON(buf.Bytes()); err != nil {
		t.Fatalf("fresh payload rejected: %v", err)
	}
	if err := VerifyEngineJSON([]byte(`{"schema":"xdropipu-bench-engine/v1"}`)); err == nil {
		t.Error("stale schema version accepted")
	}
	// Inject the unknown field into the otherwise-valid payload, so the
	// only possible rejection reason is strict decoding.
	withUnknown := strings.Replace(buf.String(), "{", `{"unknown_field": 1,`, 1)
	if err := VerifyEngineJSON([]byte(withUnknown)); err == nil {
		t.Error("unknown field accepted (layout drift)")
	}
	if err := VerifyEngineJSON(append(buf.Bytes(), buf.Bytes()...)); err == nil {
		t.Error("trailing data after the payload accepted")
	}
	withoutDedup := strings.Replace(buf.String(), `"dedup"`, `"dedup_gone"`, 1)
	if err := VerifyEngineJSON([]byte(withoutDedup)); err == nil {
		t.Error("payload missing the dedup section accepted")
	}
	withoutTraceback := strings.Replace(buf.String(), `"traceback"`, `"traceback_gone"`, 1)
	if err := VerifyEngineJSON([]byte(withoutTraceback)); err == nil {
		t.Error("payload missing the traceback section accepted")
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("fig5"); !ok {
		t.Error("fig5 not registered")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown experiment resolved")
	}
}

func TestRunAllPrefixesSections(t *testing.T) {
	// RunAll on a tiny configuration must emit one header per runner.
	// Restrict to the cheap experiments by spot-checking headers after a
	// single representative run instead of the full (expensive) suite.
	var buf bytes.Buffer
	opt := smokeOptions(&buf)
	r, _ := ByName("fig1")
	if err := r.Run(opt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig. 1") {
		t.Error("fig1 table missing title")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 8 || o.SizeFactor != 1.0 || o.Seed == 0 || o.W == nil {
		t.Errorf("defaults wrong: %+v", o)
	}
	if o.n(100) != 100 {
		t.Error("n() scaling broken")
	}
	o.SizeFactor = 0.001
	if o.n(100) < 1 {
		t.Error("n() must stay positive")
	}
}

func TestStandaloneDatasetsValid(t *testing.T) {
	opt := Options{Scale: 32, SizeFactor: 0.05, Seed: 3}.withDefaults()
	for _, d := range opt.StandaloneDatasets() {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		if len(d.Comparisons) == 0 {
			t.Errorf("%s has no comparisons", d.Name)
		}
	}
}
