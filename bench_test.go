// Package xdropipu_test hosts one testing.B benchmark per table and
// figure of the paper's evaluation (§5–§6), wrapping the experiment
// harness at reduced size, plus micro-benchmarks of the core aligner.
// Regenerate full-size artifacts with: go run ./cmd/benchtables
package xdropipu_test

import (
	"io"
	"math/rand"
	"testing"

	"github.com/sram-align/xdropipu"
	"github.com/sram-align/xdropipu/internal/bench"
	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/synth"
)

// benchOptions shrinks every experiment so `go test -bench .` completes
// within a normal benchmark budget while still exercising the full path.
func benchOptions() bench.Options {
	return bench.Options{W: io.Discard, Scale: 32, SizeFactor: 0.08, Seed: 11}
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	r, ok := bench.ByName(name)
	if !ok {
		b.Fatalf("experiment %q not registered", name)
	}
	opt := benchOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Ablation regenerates Table 1 (optimisation ablation).
func BenchmarkTable1Ablation(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2Datasets regenerates Table 2 (dataset statistics).
func BenchmarkTable2Datasets(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig1Banded regenerates Fig. 1 (banded vs X-Drop).
func BenchmarkFig1Banded(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig2SearchSpace regenerates Fig. 2 (search space vs X).
func BenchmarkFig2SearchSpace(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig3Memory regenerates Fig. 3 (working-memory comparison).
func BenchmarkFig3Memory(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig5GCUPS regenerates Fig. 5 (GCUPS vs CPU/GPU baselines).
func BenchmarkFig5GCUPS(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6Band regenerates Fig. 6 (δw vs error rate).
func BenchmarkFig6Band(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7Scaling regenerates Fig. 7 (strong scaling 1→32 IPUs).
func BenchmarkFig7Scaling(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkMemoryRestriction regenerates the §6.1 δw/memory table.
func BenchmarkMemoryRestriction(b *testing.B) { runExperiment(b, "memory") }

// BenchmarkRaces regenerates the §4.1.3 work-stealing race comparison.
func BenchmarkRaces(b *testing.B) { runExperiment(b, "races") }

// BenchmarkPartition regenerates the §6.2 batch-reduction measurement.
func BenchmarkPartition(b *testing.B) { runExperiment(b, "partition") }

// BenchmarkELBA regenerates the §6.3.1 ELBA alignment-phase comparison.
func BenchmarkELBA(b *testing.B) { runExperiment(b, "elba") }

// BenchmarkPASTIS regenerates the §6.3.2 PASTIS alignment-phase
// comparison.
func BenchmarkPASTIS(b *testing.B) { runExperiment(b, "pastis") }

// Micro-benchmarks: raw Go throughput of the aligner variants (real
// ns/op, not modeled time).

func benchPair(n int, err float64) ([]byte, []byte) {
	rng := rand.New(rand.NewSource(42))
	h := synth.RandDNA(rng, n)
	v := synth.UniformDNA(err).Apply(rng, h)
	return h, v
}

func benchAlign(b *testing.B, algo core.Algo, deltaB int) {
	b.Helper()
	h, v := benchPair(2000, 0.15)
	p := xdropipu.Params{Scorer: xdropipu.DNAScorer, Gap: -1, X: 15, Algo: algo, DeltaB: deltaB}
	var ws xdropipu.Workspace
	var cells int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := ws.ExtendRight(h, v, 0, 0, p)
		cells += r.Stats.Cells
	}
	b.ReportMetric(float64(cells)/b.Elapsed().Seconds()/1e6, "Mcells/s")
}

// BenchmarkRestricted2 measures the paper's memory-restricted aligner.
func BenchmarkRestricted2(b *testing.B) { benchAlign(b, core.AlgoRestricted2, 256) }

// BenchmarkStandard3 measures the standard three-antidiagonal aligner.
func BenchmarkStandard3(b *testing.B) { benchAlign(b, core.AlgoStandard3, 0) }

// BenchmarkAffine measures the affine-gap (ksw2-style) aligner.
func BenchmarkAffine(b *testing.B) { benchAlign(b, core.AlgoAffine, 0) }

// benchTraceback measures the traceback replay (the opt-in second pass)
// on the same workload as benchAlign, so score-only vs traceback-on
// Mcells/s compare directly — the cost ratio BENCH_engine.json tracks.
func benchTraceback(b *testing.B, algo core.Algo, deltaB int) {
	b.Helper()
	h, v := benchPair(2000, 0.15)
	p := xdropipu.Params{Scorer: xdropipu.DNAScorer, Gap: -1, X: 15, Algo: algo, DeltaB: deltaB}
	if algo == core.AlgoAffine {
		p.GapOpen = -2
	}
	var ws xdropipu.Workspace
	var cells int64
	var traceBytes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := ws.ExtendRight(h, v, 0, 0, p)
		cells += r.Stats.Cells
		tr, err := ws.TracebackRight(h, v, 0, 0, p)
		if err != nil {
			b.Fatal(err)
		}
		if tr.Score != r.Score {
			b.Fatalf("traceback score %d != kernel %d", tr.Score, r.Score)
		}
		traceBytes = tr.TraceBytes
	}
	b.ReportMetric(float64(cells)/b.Elapsed().Seconds()/1e6, "Mcells/s")
	b.ReportMetric(float64(traceBytes), "traceB")
}

// BenchmarkRestricted2Traceback measures the memory-restricted aligner
// with CIGAR emission (two passes).
func BenchmarkRestricted2Traceback(b *testing.B) { benchTraceback(b, core.AlgoRestricted2, 256) }

// BenchmarkAffineTraceback measures the affine aligner with CIGAR
// emission (two passes, 4-bit trace cells).
func BenchmarkAffineTraceback(b *testing.B) { benchTraceback(b, core.AlgoAffine, 0) }

// BenchmarkExtendSeed measures a full two-sided seed extension.
func BenchmarkExtendSeed(b *testing.B) {
	h, v := benchPair(4000, 0.15)
	synth.PlantSeed(h, v, 2000, 2000, 17)
	p := xdropipu.Params{Scorer: xdropipu.DNAScorer, Gap: -1, X: 15, DeltaB: 256}
	s := xdropipu.Seed{H: 2000, V: 2000, Len: 17}
	var ws xdropipu.Workspace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ws.ExtendSeed(h, v, s, p); err != nil {
			b.Fatal(err)
		}
	}
}
