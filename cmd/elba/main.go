// Command elba assembles long reads from a FASTA file with the ELBA
// pipeline (k-mer overlap detection → X-Drop alignment on the simulated
// IPU → string graph → contigs) and writes the contigs as FASTA.
//
// Usage:
//
//	elba -in reads.fasta -out contigs.fasta [-k 17] [-x 15] [-ipus 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/sram-align/xdropipu"
	"github.com/sram-align/xdropipu/internal/elba"
	"github.com/sram-align/xdropipu/internal/seqio"
)

func main() {
	in := flag.String("in", "", "input reads FASTA (required)")
	out := flag.String("out", "", "output contigs FASTA (required)")
	k := flag.Int("k", 17, "k-mer length")
	x := flag.Int("x", 15, "X-drop threshold")
	ipus := flag.Int("ipus", 1, "number of simulated IPUs")
	flag.Parse()
	if *in == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	recs, err := seqio.ReadFastaFile(*in, seqio.DNAAlphabet)
	if err != nil {
		fail(err)
	}
	reads := make([][]byte, len(recs))
	for i, r := range recs {
		reads[i] = r.Data
	}

	ipu := &xdropipu.IPUBackend{Cfg: xdropipu.IPUConfig{
		IPUs:      *ipus,
		Model:     xdropipu.GC200,
		Partition: true,
		Kernel: xdropipu.KernelConfig{
			Params:           xdropipu.Params{Scorer: xdropipu.DNAScorer, Gap: -1, X: *x, DeltaB: 512},
			LRSplit:          true,
			WorkStealing:     true,
			BusyWaitVariance: true,
			DualIssue:        true,
		},
	}}
	res, err := xdropipu.AssembleELBA(reads, xdropipu.ELBAConfig{K: *k, Backend: ipu})
	if err != nil {
		fail(err)
	}

	contigs := make([]*seqio.Sequence, len(res.Contigs))
	for i, c := range res.Contigs {
		contigs[i] = &seqio.Sequence{ID: fmt.Sprintf("contig%04d", i), Data: c}
	}
	if err := seqio.WriteFastaFile(*out, contigs, 80); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr,
		"%d reads → %d overlaps → %d accepted alignments → %d contigs (N50 %d); alignment phase %.3gms on %s\n",
		len(reads), res.OverlapStats.Comparisons, res.Accepted,
		len(res.Contigs), elba.N50(res.Contigs), res.AlignSeconds*1e3, res.BackendName)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "elba:", err)
	os.Exit(1)
}
