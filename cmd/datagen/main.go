// Command datagen writes synthetic datasets shaped like the paper's
// Table 2 rows (or protein families) to FASTA files, for use with
// cmd/xdropipu, cmd/elba and cmd/pastis.
//
// Usage:
//
//	datagen -kind reads -out reads.fasta [-genome 500000] [-coverage 10] [-meanlen 2900] [-seed 1]
//	datagen -kind pairs -out pairs.fasta [-count 100] [-len 2000] [-error 0.15]
//	datagen -kind protein -out prot.fasta [-families 20] [-members 4]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/sram-align/xdropipu/internal/seqio"
	"github.com/sram-align/xdropipu/internal/synth"
)

func main() {
	kind := flag.String("kind", "reads", "dataset kind: reads | pairs | protein")
	out := flag.String("out", "", "output FASTA path (required)")
	seed := flag.Int64("seed", 1, "generator seed")
	genome := flag.Int("genome", 500_000, "reads: genome length")
	coverage := flag.Float64("coverage", 10, "reads: sequencing depth")
	meanLen := flag.Int("meanlen", 2900, "reads: mean read length")
	count := flag.Int("count", 100, "pairs: number of pairs")
	length := flag.Int("len", 2000, "pairs: sequence length")
	errRate := flag.Float64("error", 0.15, "pairs: mutation rate")
	families := flag.Int("families", 20, "protein: family count")
	members := flag.Int("members", 4, "protein: members per family")
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	var seqs [][]byte
	var kindOf seqio.Kind
	switch *kind {
	case "reads":
		d := synth.Reads(synth.ReadsSpec{
			Name: "reads", GenomeLen: *genome, Coverage: *coverage,
			MeanReadLen: *meanLen, MinReadLen: *meanLen / 4,
			Errors: synth.HiFiDNA(), SeedLen: 17, MinOverlap: *meanLen / 4, Seed: *seed,
		})
		seqs = d.Sequences
	case "pairs":
		d := synth.UniformPairs(synth.UniformPairsSpec{
			Count: *count, Length: *length, ErrorRate: *errRate, SeedLen: 17, Seed: *seed,
		})
		seqs = d.Sequences
	case "protein":
		d, _ := synth.ProteinFamilies(synth.ProteinFamiliesSpec{
			Families: *families, MembersPerFamily: *members,
			MeanLen: 320, MutRate: 0.18, Seed: *seed,
		})
		seqs = d.Sequences
		kindOf = seqio.Protein
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	recs := make([]*seqio.Sequence, len(seqs))
	for i, s := range seqs {
		recs[i] = &seqio.Sequence{ID: fmt.Sprintf("seq%06d", i), Data: s, Kind: kindOf}
	}
	if err := seqio.WriteFastaFile(*out, recs, 80); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d sequences to %s\n", len(recs), *out)
}
