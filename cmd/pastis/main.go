// Command pastis runs the PASTIS protein-homology pipeline over a FASTA
// file: quasi-exact BLOSUM62 k-mer seeding, X-Drop alignment (X=49, gap
// −2) on the simulated IPU, similarity filtering and family clustering.
//
// Usage:
//
//	pastis -in proteins.fasta [-k 6] [-x 49] [-ipus 1]
//
// Output: one line per homolog pair (ids and score span), then the
// families on stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/sram-align/xdropipu"
	"github.com/sram-align/xdropipu/internal/seqio"
)

func main() {
	in := flag.String("in", "", "input protein FASTA (required)")
	k := flag.Int("k", 6, "k-mer length")
	x := flag.Int("x", 49, "X-drop threshold")
	ipus := flag.Int("ipus", 1, "number of simulated IPUs")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	recs, err := seqio.ReadFastaFile(*in, seqio.ProteinAlphabet)
	if err != nil {
		fail(err)
	}
	seqs := make([][]byte, len(recs))
	for i, r := range recs {
		seqs[i] = r.Data
	}

	ipu := &xdropipu.IPUBackend{Cfg: xdropipu.IPUConfig{
		IPUs:      *ipus,
		Model:     xdropipu.BOW,
		Partition: true,
		Kernel: xdropipu.KernelConfig{
			Params:           xdropipu.Params{Scorer: xdropipu.Blosum62, Gap: -2, X: *x, DeltaB: 512},
			LRSplit:          true,
			WorkStealing:     true,
			BusyWaitVariance: true,
			DualIssue:        true,
		},
	}}
	res, err := xdropipu.SearchPASTIS(seqs, xdropipu.PASTISConfig{K: *k, Backend: ipu})
	if err != nil {
		fail(err)
	}

	fmt.Println("#a\tb")
	for _, p := range res.Pairs {
		fmt.Printf("%s\t%s\n", recs[p[0]].ID, recs[p[1]].ID)
	}
	fams := 0
	for _, f := range res.Families {
		if len(f) > 1 {
			fams++
		}
	}
	fmt.Fprintf(os.Stderr,
		"%d proteins, %d candidates, %d homolog pairs, %d families; alignment phase %.3gms on %s\n",
		len(seqs), res.OverlapStats.Comparisons, len(res.Pairs), fams,
		res.AlignSeconds*1e3, res.BackendName)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pastis:", err)
	os.Exit(1)
}
