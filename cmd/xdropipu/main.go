// Command xdropipu aligns sequence pairs from a FASTA file on the
// simulated IPU system with the memory-restricted X-Drop algorithm.
//
// Sequences are paired in file order (1st vs 2nd, 3rd vs 4th, ...); the
// seed defaults to the midpoint of each pair unless -allpairs derives
// comparisons from shared k-mers (overlap detection).
//
// Usage:
//
//	xdropipu -in reads.fasta [-x 15] [-deltab 256] [-ipus 1] [-allpairs] [-protein]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"github.com/sram-align/xdropipu"
	"github.com/sram-align/xdropipu/internal/overlap"
	"github.com/sram-align/xdropipu/internal/seqio"
	"github.com/sram-align/xdropipu/internal/workload"
)

func main() {
	in := flag.String("in", "", "input FASTA file (required)")
	x := flag.Int("x", 15, "X-drop threshold")
	deltaB := flag.Int("deltab", 256, "working band budget δb (cells)")
	ipus := flag.Int("ipus", 1, "number of simulated IPUs")
	k := flag.Int("k", 17, "seed k-mer length")
	allPairs := flag.Bool("allpairs", false, "derive comparisons from shared k-mers instead of pairing file order")
	protein := flag.Bool("protein", false, "treat input as protein (BLOSUM62, gap -2)")
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	alpha := seqio.DNAAlphabet
	if *protein {
		alpha = seqio.ProteinAlphabet
	}
	// Stream the FASTA records straight into an arena: one slab holds Ω,
	// duplicate records share storage, and the whole execution stack
	// references that single copy.
	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	arena := workload.NewArena(0, 0)
	ids, err := arena.AppendFasta(f, alpha)
	f.Close()
	if err != nil {
		fail(err)
	}
	seqs := arena.SeqViews()

	var cmps []workload.Comparison
	if *allPairs {
		var st overlap.Stats
		cmps, st, err = overlap.Detect(seqs, overlap.Options{
			K: *k, MinKmerFreq: 2, MinSharedSeeds: 2, Protein: *protein,
		})
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "overlap detection: %d candidate pairs from %d reliable k-mers\n",
			st.Comparisons, st.ReliableKmers)
	} else {
		for i := 0; i+1 < len(seqs); i += 2 {
			h, v := seqs[i], seqs[i+1]
			if len(h) < *k || len(v) < *k {
				continue
			}
			cmps = append(cmps, workload.Comparison{
				H: i, V: i + 1,
				SeedH: (len(h) - *k) / 2, SeedV: (len(v) - *k) / 2, SeedLen: *k,
			})
		}
	}
	if len(cmps) == 0 {
		fail(fmt.Errorf("no comparisons to run"))
	}
	d := arena.NewDataset(*in, workload.PlanOf(cmps), *protein)

	params := xdropipu.Params{Scorer: xdropipu.DNAScorer, Gap: -1, X: *x, DeltaB: *deltaB}
	if *protein {
		params.Scorer = xdropipu.Blosum62
		params.Gap = -2
	}

	// Submit through the persistent engine: results stream back batch by
	// batch, and Ctrl-C cancels the job (planning included) cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	eng := xdropipu.NewEngine(
		xdropipu.WithIPUs(*ipus),
		xdropipu.WithModel(xdropipu.GC200),
		xdropipu.WithPartition(true),
		xdropipu.WithKernel(xdropipu.KernelConfig{
			Params:           params,
			LRSplit:          true,
			WorkStealing:     true,
			BusyWaitVariance: true,
			DualIssue:        true,
		}),
	)
	defer eng.Close()
	job, err := eng.Submit(ctx, d)
	if err != nil {
		fail(err)
	}
	// Updates arrive in completion order, so count them rather than
	// trusting the batch index as a progress measure.
	done := 0
	for u := range job.Results() {
		done++
		fmt.Fprintf(os.Stderr, "batch %d/%d: %d alignments\r", done, u.Batches, len(u.Results))
	}
	fmt.Fprintln(os.Stderr)
	rep, err := job.Wait(ctx)
	if err != nil {
		fail(err)
	}

	fmt.Println("#h\tv\tscore\tbegH\tendH\tbegV\tendV")
	for i, r := range rep.Results {
		c := d.Comparisons[i]
		fmt.Printf("%s\t%s\t%d\t%d\t%d\t%d\t%d\n",
			ids[c.H], ids[c.V], r.Score, r.BegH, r.EndH, r.BegV, r.EndV)
	}
	fmt.Fprintf(os.Stderr,
		"%d alignments on %d simulated IPU(s): device %.3gms, end-to-end %.3gms, %.0f GCUPS, %d batches, reuse %.2f×\n",
		len(rep.Results), *ipus, rep.DeviceComputeSeconds*1e3, rep.WallSeconds*1e3,
		rep.GCUPS(rep.DeviceComputeSeconds), rep.Batches, rep.ReuseFactor)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "xdropipu:", err)
	os.Exit(1)
}
