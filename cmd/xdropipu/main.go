// Command xdropipu aligns sequence pairs from a FASTA file on the
// simulated IPU system with the memory-restricted X-Drop algorithm, or
// serves that capability over HTTP.
//
// Align mode pairs sequences in file order (1st vs 2nd, 3rd vs 4th, ...);
// the seed defaults to the midpoint of each pair unless -allpairs derives
// comparisons from shared k-mers (overlap detection). Ctrl-C mid-run
// cancels the job but drains the batches already streamed, printing the
// partial results.
//
// Serve mode runs the multi-tenant alignment service: clients POST
// workloads (binary wire datasets or plain FASTA) to /v1/jobs and stream
// NDJSON results; /v1/stats and /v1/metrics expose the shard pool.
//
// Usage:
//
//	xdropipu -in reads.fasta [-x 15] [-deltab 256] [-ipus 1] [-allpairs] [-protein] [-maxslab bytes] [-spill dir]
//	xdropipu serve [-addr :8080] [-shards 1] [-ipus 1] [-cache 65536] [...]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/sram-align/xdropipu"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/overlap"
	"github.com/sram-align/xdropipu/internal/seqio"
	"github.com/sram-align/xdropipu/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	runAlign(os.Args[1:])
}

func kernelConfig(protein bool, x, deltaB int) xdropipu.KernelConfig {
	params := xdropipu.Params{Scorer: xdropipu.DNAScorer, Gap: -1, X: x, DeltaB: deltaB}
	if protein {
		params.Scorer = xdropipu.Blosum62
		params.Gap = -2
	}
	return xdropipu.KernelConfig{
		Params:           params,
		LRSplit:          true,
		WorkStealing:     true,
		BusyWaitVariance: true,
		DualIssue:        true,
	}
}

func runAlign(args []string) {
	fs := flag.NewFlagSet("xdropipu", flag.ExitOnError)
	in := fs.String("in", "", "input FASTA file (required)")
	x := fs.Int("x", 15, "X-drop threshold")
	deltaB := fs.Int("deltab", 256, "working band budget δb (cells)")
	ipus := fs.Int("ipus", 1, "number of simulated IPUs")
	k := fs.Int("k", 17, "seed k-mer length")
	allPairs := fs.Bool("allpairs", false, "derive comparisons from shared k-mers instead of pairing file order")
	protein := fs.Bool("protein", false, "treat input as protein (BLOSUM62, gap -2)")
	maxSlab := fs.Int("maxslab", 0, "arena slab cap in bytes (0 = 2 GiB default); pools roll across slabs")
	spillDir := fs.String("spill", "", "directory for slab spill files; sealed slabs page to disk between batches")
	traceback := fs.Bool("traceback", false, "emit CIGARs")
	traceMin := fs.Int("trace-min-score", 0, "emit CIGARs only for comparisons scoring at least this (0 = all; needs -traceback)")
	traceMode := fs.String("trace-mode", "auto", "traceback recording strategy: auto, replay or fused")
	fs.Parse(args)
	if *in == "" {
		fs.Usage()
		os.Exit(2)
	}

	alpha := seqio.DNAAlphabet
	if *protein {
		alpha = seqio.ProteinAlphabet
	}
	// Stream the FASTA records straight into an arena: the slab spine
	// holds Ω once, duplicate records share storage, and the whole
	// execution stack references that single copy. Pools larger than the
	// slab cap roll across slabs as they stream in.
	f, err := os.Open(*in)
	if err != nil {
		fail(err)
	}
	arena := workload.NewArena(0, 0)
	if *maxSlab > 0 {
		arena.SetMaxSlabBytes(*maxSlab)
	}
	if *spillDir != "" {
		arena.EnableSpill(*spillDir)
	}
	ids, err := arena.AppendFasta(f, alpha)
	f.Close()
	if err != nil {
		fail(err)
	}
	seqs := arena.SeqViews()

	var cmps []workload.Comparison
	if *allPairs {
		var st overlap.Stats
		cmps, st, err = overlap.Detect(seqs, overlap.Options{
			K: *k, MinKmerFreq: 2, MinSharedSeeds: 2, Protein: *protein,
		})
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "overlap detection: %d candidate pairs from %d reliable k-mers\n",
			st.Comparisons, st.ReliableKmers)
	} else {
		for i := 0; i+1 < len(seqs); i += 2 {
			h, v := seqs[i], seqs[i+1]
			if len(h) < *k || len(v) < *k {
				continue
			}
			cmps = append(cmps, workload.Comparison{
				H: i, V: i + 1,
				SeedH: (len(h) - *k) / 2, SeedV: (len(v) - *k) / 2, SeedLen: *k,
			})
		}
	}
	if len(cmps) == 0 {
		fail(fmt.Errorf("no comparisons to run"))
	}
	var d *workload.Dataset
	if *spillDir != "" {
		// Spine-only dataset: no materialised sequence views, so sealed
		// slabs page out to -spill and batches fault their sets back in.
		d = arena.NewStreamingDataset(*in, workload.PlanOf(cmps), *protein)
		arena.Seal()
		if _, err := arena.Spill(); err != nil {
			fail(err)
		}
		defer arena.Close()
	} else {
		d = arena.NewDataset(*in, workload.PlanOf(cmps), *protein)
	}

	// Submit through the persistent engine: results stream back batch by
	// batch, and Ctrl-C cancels the job (planning included) while keeping
	// the batches already delivered.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	eng := xdropipu.NewEngine(
		xdropipu.WithIPUs(*ipus),
		xdropipu.WithModel(xdropipu.GC200),
		xdropipu.WithPartition(true),
		xdropipu.WithKernel(kernelConfig(*protein, *x, *deltaB)),
		xdropipu.WithTraceback(*traceback),
		xdropipu.WithTraceMinScore(*traceMin),
		xdropipu.WithTraceMode(parseTraceMode(*traceMode)),
	)
	defer eng.Close()
	job, err := eng.Submit(ctx, d)
	if err != nil {
		fail(err)
	}
	// Accumulate the stream as it arrives: on a clean run the report
	// carries everything anyway, but an interrupted job still owes the
	// user whatever completed before the signal.
	partial := make([]*ipukernel.AlignOut, len(d.Comparisons))
	done, streamed := 0, 0
	for u := range job.Results() {
		done++
		for i := range u.Results {
			r := &u.Results[i]
			if partial[r.GlobalID] == nil {
				streamed++
			}
			partial[r.GlobalID] = r
		}
		fmt.Fprintf(os.Stderr, "batch %d/%d: %d alignments\r", done, u.Batches, len(u.Results))
	}
	fmt.Fprintln(os.Stderr)
	rep, err := job.Wait(context.Background())
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			fail(err)
		}
		// Interrupted mid-stream: drain what completed and report it as
		// the partial run it is, instead of discarding finished work.
		fmt.Println("#h\tv\tscore\tbegH\tendH\tbegV\tendV")
		for i, r := range partial {
			if r == nil {
				continue
			}
			c := d.Comparisons[i]
			fmt.Printf("%s\t%s\t%d\t%d\t%d\t%d\t%d\n",
				ids[c.H], ids[c.V], r.Score, r.BegH, r.EndH, r.BegV, r.EndV)
		}
		fmt.Fprintf(os.Stderr,
			"interrupted: %d/%d alignments completed across %d batches before cancellation\n",
			streamed, len(d.Comparisons), done)
		os.Exit(130)
	}

	fmt.Println("#h\tv\tscore\tbegH\tendH\tbegV\tendV")
	for i, r := range rep.Results {
		c := d.Comparisons[i]
		fmt.Printf("%s\t%s\t%d\t%d\t%d\t%d\t%d\n",
			ids[c.H], ids[c.V], r.Score, r.BegH, r.EndH, r.BegV, r.EndV)
	}
	fmt.Fprintf(os.Stderr,
		"%d alignments on %d simulated IPU(s): device %.3gms, end-to-end %.3gms, %.0f GCUPS, %d batches, reuse %.2f×\n",
		len(rep.Results), *ipus, rep.DeviceComputeSeconds*1e3, rep.WallSeconds*1e3,
		rep.GCUPS(rep.DeviceComputeSeconds), rep.Batches, rep.ReuseFactor)
	if *spillDir != "" {
		st := arena.Residency()
		fmt.Fprintf(os.Stderr, "arena spine: %d slabs, %d spills, %d faults\n",
			st.Slabs, st.Spills, st.Faults)
	}
}

func runServe(args []string) {
	fs := flag.NewFlagSet("xdropipu serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	shards := fs.Int("shards", 1, "engine shards (independent fleets + caches)")
	ipus := fs.Int("ipus", 1, "simulated IPUs per shard")
	tiles := fs.Int("tiles", 0, "tiles per IPU (0 = model default)")
	x := fs.Int("x", 15, "X-drop threshold")
	deltaB := fs.Int("deltab", 256, "working band budget δb (cells)")
	protein := fs.Bool("protein", false, "protein scoring (BLOSUM62, gap -2)")
	cache := fs.Int("cache", 0, "cross-job result cache entries per shard (0 = off)")
	dedup := fs.Bool("dedup", false, "deduplicate identical extensions within a job")
	traceback := fs.Bool("traceback", false, "emit CIGARs")
	traceMin := fs.Int("trace-min-score", 0, "emit CIGARs only for comparisons scoring at least this (0 = all; needs -traceback)")
	traceMode := fs.String("trace-mode", "auto", "traceback recording strategy: auto, replay or fused")
	window := fs.Int("window", 256, "replay window (chunks) per job for stream resume")
	linger := fs.Duration("linger", 0, "default grace before a disconnected job is cancelled")
	rate := fs.Float64("tenant-rate", 0, "per-tenant admitted jobs per second (0 = unlimited)")
	burst := fs.Int("tenant-burst", 4, "per-tenant admission burst")
	maxLive := fs.Int("max-live", 0, "live jobs per shard before shedding (0 = queue depth)")
	fs.Parse(args)

	opts := []xdropipu.EngineOption{
		xdropipu.WithIPUs(*ipus),
		xdropipu.WithModel(xdropipu.GC200),
		xdropipu.WithPartition(true),
		xdropipu.WithKernel(kernelConfig(*protein, *x, *deltaB)),
		xdropipu.WithDedupExtensions(*dedup),
		xdropipu.WithTraceback(*traceback),
		xdropipu.WithTraceMinScore(*traceMin),
		xdropipu.WithTraceMode(parseTraceMode(*traceMode)),
	}
	if *tiles > 0 {
		opts = append(opts, xdropipu.WithTilesPerIPU(*tiles))
	}
	if *cache > 0 {
		opts = append(opts, xdropipu.WithResultCache(*cache))
	}
	svc := xdropipu.NewService(xdropipu.ServiceConfig{
		Shards: *shards, EngineOptions: opts,
		WindowChunks: *window, Linger: *linger,
		TenantRatePerSec: *rate, TenantBurst: *burst, MaxLiveJobs: *maxLive,
	})

	srv := &http.Server{
		Addr:    *addr,
		Handler: svc.Handler(),
		// Serve result streams over h2c as well as HTTP/1.1: one client
		// can multiplex many job streams on a single connection.
		Protocols: serveProtocols(),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "xdropipu serve: listening on %s (%d shard(s), %d IPU(s) each)\n",
		*addr, *shards, *ipus)

	select {
	case err := <-errCh:
		fail(err)
	case <-ctx.Done():
	}

	// Graceful teardown: stop accepting, give attached streams a moment
	// to observe their final records, then cancel whatever is left and
	// print the shard stats the process is walking away from.
	fmt.Fprintln(os.Stderr, "xdropipu serve: signal received, draining")
	shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shctx)
	svc.Close()
	for i, e := range svc.Shards() {
		st := e.Stats()
		fmt.Fprintf(os.Stderr,
			"shard %d: %d jobs, %d batches, %d cells, cache %d/%d hit/miss, %d retries\n",
			i, st.JobsDone, st.BatchesDone, st.CellsDone, st.CacheHits, st.CacheMisses, st.Retries)
	}
}

func parseTraceMode(s string) xdropipu.TraceMode {
	switch s {
	case "auto":
		return xdropipu.TraceModeAuto
	case "replay":
		return xdropipu.TraceModeReplay
	case "fused":
		return xdropipu.TraceModeFused
	}
	fail(fmt.Errorf("unknown -trace-mode %q (want auto, replay or fused)", s))
	panic("unreachable")
}

func serveProtocols() *http.Protocols {
	var p http.Protocols
	p.SetHTTP1(true)
	p.SetUnencryptedHTTP2(true)
	return &p
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "xdropipu:", err)
	os.Exit(1)
}
