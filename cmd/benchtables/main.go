// Command benchtables regenerates every table and figure of the paper's
// evaluation (§5–§6) on the simulated platforms and prints them as text
// tables.
//
// Usage:
//
//	benchtables [-exp name] [-scale n] [-size f] [-seed n] [-list]
//
// With no -exp it runs the full suite. -scale divides every platform's
// parallel resources (default 8); -size scales dataset sizes.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/sram-align/xdropipu/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (default: all); see -list")
	scale := flag.Int("scale", 8, "platform scale divisor (1 = full machines)")
	size := flag.Float64("size", 1.0, "dataset size factor")
	seed := flag.Int64("seed", 0, "generation seed (0 = default)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, r := range bench.Experiments() {
			fmt.Printf("%-10s %s\n", r.Name, r.Artifact)
		}
		return
	}

	opt := bench.Options{W: os.Stdout, Scale: *scale, SizeFactor: *size, Seed: *seed}
	var err error
	if *exp == "" {
		err = bench.RunAll(opt)
	} else {
		r, ok := bench.ByName(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchtables: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stdout, "=== %s: %s ===\n\n", r.Name, r.Artifact)
		err = r.Run(opt)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}
