// Command benchtables regenerates every table and figure of the paper's
// evaluation (§5–§6) on the simulated platforms and prints them as text
// tables.
//
// Usage:
//
//	benchtables [-exp name] [-scale n] [-size f] [-seed n] [-list] [-json file] [-checkjson file]
//
// With no -exp it runs the full suite. -scale divides every platform's
// parallel resources (default 8); -size scales dataset sizes. -json runs
// the engine throughput benchmark and writes its machine-readable result
// (Mcells/s per kernel variant, engine throughput at 1/4/16 concurrent
// submitters, the dedup/result-cache measurement, and the traceback-on
// vs score-only throughput with peak traceback bytes) to the given file
// — the BENCH_engine.json artifact that tracks the performance
// trajectory across PRs. -checkjson verifies an existing artifact
// against the current schema, the CI gate that catches drift between the
// committed file and the code that regenerates it.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"github.com/sram-align/xdropipu/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (default: all); see -list")
	scale := flag.Int("scale", 8, "platform scale divisor (1 = full machines)")
	size := flag.Float64("size", 1.0, "dataset size factor")
	seed := flag.Int64("seed", 0, "generation seed (0 = default)")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonPath := flag.String("json", "", "write BENCH_engine.json-style engine throughput to this file and exit")
	checkPath := flag.String("checkjson", "", "verify an existing BENCH_engine.json against the current schema and exit (CI drift gate)")
	flag.Parse()

	if *list {
		for _, r := range bench.Experiments() {
			fmt.Printf("%-10s %s\n", r.Name, r.Artifact)
		}
		return
	}

	if *checkPath != "" {
		data, err := os.ReadFile(*checkPath)
		if err == nil {
			err = bench.VerifyEngineJSON(data)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "%s matches schema %s\n", *checkPath, bench.EngineBenchSchema)
		return
	}

	opt := bench.Options{W: os.Stdout, Scale: *scale, SizeFactor: *size, Seed: *seed}
	if *jsonPath != "" {
		if *exp != "" {
			fmt.Fprintln(os.Stderr, "benchtables: -json runs the engine benchmark and cannot be combined with -exp")
			os.Exit(2)
		}
		// Buffer the whole benchmark before touching the file, so a
		// failed run cannot truncate the previous tracked artifact.
		var buf bytes.Buffer
		err := bench.WriteEngineJSON(opt, &buf)
		if err == nil {
			err = os.WriteFile(*jsonPath, buf.Bytes(), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
		return
	}
	var err error
	if *exp == "" {
		err = bench.RunAll(opt)
	} else {
		r, ok := bench.ByName(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchtables: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stdout, "=== %s: %s ===\n\n", r.Name, r.Artifact)
		err = r.Run(opt)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}
