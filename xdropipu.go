// Package xdropipu is the public face of this repository: a Go
// reproduction of "Space Efficient Sequence Alignment for SRAM-Based
// Computing: X-Drop on the Graphcore IPU" (SC 2023).
//
// It re-exports the library's main entry points:
//
//   - the memory-restricted X-Drop aligner and its variants (Align,
//     ExtendSeed, Params);
//   - the simulated IPU execution stack (RunOnIPU with IPUConfig);
//   - the ELBA and PASTIS pipelines (AssembleELBA, SearchPASTIS);
//   - the CPU/GPU baselines of the paper's evaluation.
//
// See README.md for a quickstart and DESIGN.md for the system inventory.
package xdropipu

import (
	"github.com/sram-align/xdropipu/internal/backend"
	"github.com/sram-align/xdropipu/internal/baselines"
	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/elba"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/pastis"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/workload"
)

// Core alignment API.
type (
	// Params configures an X-Drop extension (scorer, gap, X, δb, variant).
	Params = core.Params
	// Result is a single extension outcome with its execution trace.
	Result = core.Result
	// SeedResult is a two-sided seed extension outcome.
	SeedResult = core.SeedResult
	// Seed anchors a seed-and-extend alignment.
	Seed = core.Seed
	// Workspace provides allocation-free repeated alignment.
	Workspace = core.Workspace
	// Algo selects an X-Drop variant.
	Algo = core.Algo
)

// X-Drop variants.
const (
	// AlgoRestricted2 is the paper's memory-restricted algorithm (§3).
	AlgoRestricted2 = core.AlgoRestricted2
	// AlgoStandard3 is Zhang's three-antidiagonal algorithm.
	AlgoStandard3 = core.AlgoStandard3
	// AlgoReference is the full-matrix oracle.
	AlgoReference = core.AlgoReference
	// AlgoAffine is the affine-gap (ksw2-style) variant.
	AlgoAffine = core.AlgoAffine
)

// Align runs one semi-global X-Drop extension of h against v.
func Align(h, v []byte, p Params) Result {
	return core.Align(core.NewView(h), core.NewView(v), p)
}

// ExtendSeed aligns two sequences through a shared seed: a left and a
// right X-Drop extension around it (§4.1.1).
func ExtendSeed(h, v []byte, s Seed, p Params) (SeedResult, error) {
	return core.ExtendSeed(h, v, s, p)
}

// Scoring schemes.
var (
	// DNAScorer is the +1/−1 scheme of the paper's DNA experiments.
	DNAScorer = scoring.DNADefault
	// Blosum62 is the protein substitution matrix PASTIS uses.
	Blosum62 = scoring.Blosum62
)

// Workload types shared by the execution stack and the pipelines.
type (
	// Dataset is a sequence pool plus planned comparisons.
	Dataset = workload.Dataset
	// Comparison is one planned seed extension.
	Comparison = workload.Comparison
	// Alignment is one comparison's result in dataset coordinates.
	Alignment = workload.Alignment
)

// Simulated IPU execution.
type (
	// IPUConfig configures the multi-IPU driver (devices, partitioning,
	// kernel options).
	IPUConfig = driver.Config
	// IPUReport is the outcome of a driver run.
	IPUReport = driver.Report
	// KernelConfig selects the on-tile codelet options (LR splitting,
	// work stealing, dual issue; §4.1).
	KernelConfig = ipukernel.Config
	// IPUModel describes an IPU generation.
	IPUModel = platform.IPUModel
)

// IPU hardware models (§2.1.1).
var (
	// GC200 is the Mk2 IPU.
	GC200 = platform.GC200
	// BOW is the Bow IPU.
	BOW = platform.BOW
)

// RunOnIPU aligns every comparison of a dataset on the simulated IPU
// system and returns the report (results, modeled times, traffic).
func RunOnIPU(d *Dataset, cfg IPUConfig) (*IPUReport, error) {
	return driver.Run(d, cfg)
}

// Pipelines.
type (
	// ELBAConfig configures the assembler pipeline (§2.3).
	ELBAConfig = elba.Config
	// ELBAResult is an assembly outcome.
	ELBAResult = elba.Result
	// PASTISConfig configures the protein homology pipeline (§2.4).
	PASTISConfig = pastis.Config
	// PASTISResult is a homology search outcome.
	PASTISResult = pastis.Result
	// Backend executes a pipeline's alignment phase (IPU, CPU or GPU).
	Backend = backend.Backend
	// IPUBackend runs alignments on the simulated IPU system.
	IPUBackend = backend.IPU
	// CPUBackend runs the SeqAn/ksw2/genometools-like CPU baselines.
	CPUBackend = backend.CPU
	// GPUBackend runs the LOGAN-like GPU baseline.
	GPUBackend = backend.GPU
)

// AssembleELBA runs the ELBA pipeline over a read set.
func AssembleELBA(reads [][]byte, cfg ELBAConfig) (*ELBAResult, error) {
	return elba.Assemble(reads, cfg)
}

// SearchPASTIS runs the PASTIS pipeline over a protein set.
func SearchPASTIS(seqs [][]byte, cfg PASTISConfig) (*PASTISResult, error) {
	return pastis.Search(seqs, cfg)
}

// Baselines (§5.1).
type BaselineResult = baselines.Result

// SeqAn runs the SeqAn-like CPU baseline on a dataset.
func SeqAn(d *Dataset, x int) *BaselineResult {
	return baselines.SeqAn(d, x, platform.EPYC7763)
}

// Ksw2 runs the ksw2-like affine-gap CPU baseline.
func Ksw2(d *Dataset, x int) *BaselineResult {
	return baselines.Ksw2(d, x, platform.EPYC7763)
}

// Logan runs the LOGAN-like GPU baseline.
func Logan(d *Dataset, x, gpus int) *BaselineResult {
	return baselines.Logan(d, x, platform.A100, gpus)
}
