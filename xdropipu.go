// Package xdropipu is the public face of this repository: a Go
// reproduction of "Space Efficient Sequence Alignment for SRAM-Based
// Computing: X-Drop on the Graphcore IPU" (SC 2023).
//
// It re-exports the library's main entry points:
//
//   - the memory-restricted X-Drop aligner and its variants (Align,
//     ExtendSeed, Params);
//   - the persistent asynchronous Engine (NewEngine, Submit, Job) —
//     the service interface for concurrent clients;
//   - the one-shot simulated IPU run (RunOnIPU with IPUConfig), a thin
//     synchronous wrapper over a throwaway Engine;
//   - the ELBA and PASTIS pipelines (AssembleELBA, SearchPASTIS);
//   - the CPU/GPU baselines of the paper's evaluation.
//
// See README.md for a quickstart and DESIGN.md for the layer diagram and
// system inventory.
package xdropipu

import (
	"context"

	"github.com/sram-align/xdropipu/internal/alignment"
	"github.com/sram-align/xdropipu/internal/backend"
	"github.com/sram-align/xdropipu/internal/baselines"
	"github.com/sram-align/xdropipu/internal/core"
	"github.com/sram-align/xdropipu/internal/driver"
	"github.com/sram-align/xdropipu/internal/elba"
	"github.com/sram-align/xdropipu/internal/engine"
	"github.com/sram-align/xdropipu/internal/ipukernel"
	"github.com/sram-align/xdropipu/internal/pastis"
	"github.com/sram-align/xdropipu/internal/platform"
	"github.com/sram-align/xdropipu/internal/scoring"
	"github.com/sram-align/xdropipu/internal/seqio"
	"github.com/sram-align/xdropipu/internal/service"
	"github.com/sram-align/xdropipu/internal/service/wire"
	"github.com/sram-align/xdropipu/internal/serviceclient"
	"github.com/sram-align/xdropipu/internal/workload"
)

// Core alignment API.
type (
	// Params configures an X-Drop extension (scorer, gap, X, δb, variant).
	Params = core.Params
	// Result is a single extension outcome with its execution trace.
	Result = core.Result
	// SeedResult is a two-sided seed extension outcome.
	SeedResult = core.SeedResult
	// Seed anchors a seed-and-extend alignment.
	Seed = core.Seed
	// Workspace provides allocation-free repeated alignment.
	Workspace = core.Workspace
	// Algo selects an X-Drop variant.
	Algo = core.Algo
	// KernelTier selects the DP arithmetic width (wide int32, narrow
	// int16 with saturation-checked promotion, or automatic).
	KernelTier = core.Tier
)

// X-Drop variants.
const (
	// AlgoRestricted2 is the paper's memory-restricted algorithm (§3).
	AlgoRestricted2 = core.AlgoRestricted2
	// AlgoStandard3 is Zhang's three-antidiagonal algorithm.
	AlgoStandard3 = core.AlgoStandard3
	// AlgoReference is the full-matrix oracle.
	AlgoReference = core.AlgoReference
	// AlgoAffine is the affine-gap (ksw2-style) variant.
	AlgoAffine = core.AlgoAffine
)

// Kernel tiers. Every tier returns bit-identical Results; they differ
// only in DP working-set footprint and throughput.
const (
	// TierWide runs every extension on int32 lanes (the default).
	TierWide = core.TierWide
	// TierNarrow attempts int16 lanes first and transparently re-runs
	// an extension on int32 when its score headroom saturates.
	TierNarrow = core.TierNarrow
	// TierAuto proves per extension that int16 cannot saturate and
	// picks the narrow kernel only then — it never promotes, so the
	// SRAM planner can budget narrow-only working sets and admit
	// larger sequences per tile.
	TierAuto = core.TierAuto
)

// TraceMode selects how traced comparisons record their direction codes.
type TraceMode = core.TraceMode

// Trace modes. Fused and replayed recordings are bit-identical; the
// modes differ in SRAM charging and modeled time.
const (
	// TraceModeAuto fuses recording into the scoring pass whenever the
	// extension's direction arena fits the per-thread budget, and
	// replays otherwise (the default).
	TraceModeAuto = core.TraceModeAuto
	// TraceModeReplay always records through the two-pass replay.
	TraceModeReplay = core.TraceModeReplay
	// TraceModeFused forces single-pass recording wherever the kernel
	// is eligible.
	TraceModeFused = core.TraceModeFused
)

// Align runs one semi-global X-Drop extension of h against v.
func Align(h, v []byte, p Params) Result {
	return core.Align(core.NewView(h), core.NewView(v), p)
}

// ExtendSeed aligns two sequences through a shared seed: a left and a
// right X-Drop extension around it (§4.1.1).
func ExtendSeed(h, v []byte, s Seed, p Params) (SeedResult, error) {
	return core.ExtendSeed(h, v, s, p)
}

// Traceback and CIGAR reporting.
type (
	// Cigar is an alignment's edit script ("12=1X3D…") over the
	// {=, X, I, D} operation set: immutable, comparable, validated.
	Cigar = alignment.Cigar
	// CigarOp is one CIGAR operation.
	CigarOp = alignment.Op
	// CigarRun is one maximal run of a CIGAR operation.
	CigarRun = alignment.Run
	// TracedAlignment is a full traceback outcome: aligned spans in
	// sequence coordinates plus the Cigar covering them.
	TracedAlignment = alignment.Alignment
)

// CIGAR operations.
const (
	// CigarMatch ('=') aligns two equal symbols.
	CigarMatch = alignment.OpMatch
	// CigarMismatch ('X') aligns two differing symbols.
	CigarMismatch = alignment.OpMismatch
	// CigarIns ('I') consumes one H symbol against a gap in V.
	CigarIns = alignment.OpIns
	// CigarDel ('D') consumes one V symbol against a gap in H.
	CigarDel = alignment.OpDel
)

// ParseCigar validates s and returns it as a Cigar.
func ParseCigar(s string) (Cigar, error) { return alignment.Parse(s) }

// CigarScore recomputes the score a Cigar implies over the two aligned
// fragments — the independent oracle that pins traceback correctness:
// for any CIGAR this library emits, the reconstructed score bit-matches
// the score-only kernel.
func CigarScore(h, v []byte, c Cigar, p Params) (int, error) {
	return alignment.ScoreOf(h, v, c, p.Scorer, p.Gap, p.GapOpen)
}

// TracebackSeed runs the two-pass seed extension: a SeedResult whose
// scores and coordinates bit-match ExtendSeed (its Stats are zero except
// Clamped — execution traces belong to the score pass), plus the full
// alignment with its CIGAR. Fleet-scale callers enable
// IPUConfig.Traceback or WithTraceback instead and read AlignOut.Cigar
// per comparison.
func TracebackSeed(h, v []byte, s Seed, p Params) (SeedResult, TracedAlignment, error) {
	var w core.Workspace
	return w.TracebackSeed(h, v, s, p)
}

// Scoring schemes.
var (
	// DNAScorer is the +1/−1 scheme of the paper's DNA experiments.
	DNAScorer = scoring.DNADefault
	// Blosum62 is the protein substitution matrix PASTIS uses.
	Blosum62 = scoring.Blosum62
)

// Workload types shared by the execution stack and the pipelines.
type (
	// Dataset is a sequence pool plus planned comparisons — the
	// compatibility view over the arena spine.
	Dataset = workload.Dataset
	// Comparison is one planned seed extension.
	Comparison = workload.Comparison
	// Alignment is one comparison's result in dataset coordinates.
	Alignment = workload.Alignment
	// Arena is the packed sequence pool Ω: a spine of content-interned
	// slabs shared zero-copy by every concurrent job. Pools larger than
	// one slab roll across slabs (SetMaxSlabBytes tunes the cap), and
	// sealed slabs can spill to disk (EnableSpill/Seal/Spill) with the
	// driver pinning each batch's slab set back in around execution.
	Arena = workload.Arena
	// SeqRef is a sequence span inside an arena spine: slab index plus
	// exact 32-bit offset and length within that slab.
	SeqRef = workload.SeqRef
	// CmpPlan is the columnar (struct-of-arrays) comparison table.
	CmpPlan = workload.Plan
	// ExtensionKey is the content-addressed identity of one seed
	// extension (sequence digests, lengths, seed geometry), equal across
	// jobs whenever the bytes and seed match.
	ExtensionKey = workload.ExtensionKey
	// ResultCacheKey is the full result-cache key: an ExtensionKey plus
	// the kernel-configuration fingerprint, so one cache shared across
	// differently-configured runs can never serve wrong alignments.
	ResultCacheKey = driver.CacheKey
	// ResultCache memoises finished extensions across jobs; implement it
	// to plug a custom cache into IPUConfig.Cache (WithResultCache
	// provides the engine's bounded sharded LRU).
	ResultCache = driver.ResultCache
)

// NewArena returns an empty sequence arena with capacity hints (slab
// bytes, sequence slots). Fill it with Append/Intern/AppendFasta, build a
// CmpPlan with PlanOf, then Arena.NewDataset yields the dataset every
// engine submission can share without duplicating sequence memory.
// Arena.NewStreamingDataset yields a spine-only view that keeps slabs
// spillable for pools that outgrow host RAM.
func NewArena(sizeHint, seqHint int) *Arena {
	return workload.NewArena(sizeHint, seqHint)
}

// PlanOf builds a columnar comparison plan from comparison rows.
func PlanOf(cmps []Comparison) *CmpPlan { return workload.PlanOf(cmps) }

// Alphabet reports which byte symbols are valid for a sequence kind
// (Arena.AppendFasta validates against one).
type Alphabet = seqio.Alphabet

// FASTA alphabets.
var (
	// DNAAlphabet accepts ACGT plus N, either case.
	DNAAlphabet = seqio.DNAAlphabet
	// ProteinAlphabet accepts the 24 BLOSUM62 symbols.
	ProteinAlphabet = seqio.ProteinAlphabet
)

// Simulated IPU execution.
type (
	// IPUConfig configures the multi-IPU driver (devices, partitioning,
	// kernel options).
	IPUConfig = driver.Config
	// IPUReport is the outcome of a driver run.
	IPUReport = driver.Report
	// KernelConfig selects the on-tile codelet options (LR splitting,
	// work stealing, dual issue; §4.1).
	KernelConfig = ipukernel.Config
	// IPUModel describes an IPU generation.
	IPUModel = platform.IPUModel
)

// IPU hardware models (§2.1.1).
var (
	// GC200 is the Mk2 IPU.
	GC200 = platform.GC200
	// BOW is the Bow IPU.
	BOW = platform.BOW
)

// Asynchronous service interface.
type (
	// Engine is a persistent asynchronous alignment service: it owns the
	// modeled device fleet and accepts concurrent Submit calls, fairly
	// interleaving their batches.
	Engine = engine.Engine
	// Job is one submission's handle (Wait for the report, Results to
	// stream batches as they complete).
	Job = engine.Job
	// EngineUpdate is one streamed batch of a job.
	EngineUpdate = engine.Update
	// EngineOption configures NewEngine.
	EngineOption = engine.Option
	// EngineStats is a snapshot of engine-lifetime counters.
	EngineStats = engine.Stats
)

// Fault tolerance.
type (
	// FaultPlan injects deterministic, seeded faults at the batch
	// execution boundary — the chaos substrate behind the engine's
	// retry/hedge/degradation machinery. Build one with NewFaultPlan and
	// install it with WithFaultPlan (or IPUConfig.Faults).
	FaultPlan = driver.FaultPlan
	// FaultSpec sets a fault plan's injection rates (transient,
	// permanent, straggler) and straggler delay.
	FaultSpec = driver.FaultSpec
	// FaultError is the error an injected fault raises for a failed
	// batch execution; classify it with errors.As and Transient.
	FaultError = driver.FaultError
	// FaultKind classifies one injected fault.
	FaultKind = driver.FaultKind
	// DegradedMode selects what the engine does with a batch that
	// exhausted its fault tolerance (see WithDegradedMode).
	DegradedMode = engine.DegradedMode
)

// Fault kinds.
const (
	// FaultNone leaves an execution untouched.
	FaultNone = driver.FaultNone
	// FaultTransient fails one attempt; a retry can succeed.
	FaultTransient = driver.FaultTransient
	// FaultPermanent fails every attempt of a batch.
	FaultPermanent = driver.FaultPermanent
	// FaultStraggler delays an execution without failing it.
	FaultStraggler = driver.FaultStraggler
)

// Degraded modes.
const (
	// DegradeFail fails the whole job with the batch's error (default).
	DegradeFail = engine.DegradeFail
	// DegradeFallback re-runs exhausted batches on the reference host
	// path; the report stays bit-identical to fault-free execution.
	DegradeFallback = engine.DegradeFallback
	// DegradePartial completes exhausted batches as Failed placeholders
	// and counts them in IPUReport.PartialFailures.
	DegradePartial = engine.DegradePartial
)

// NewFaultPlan returns a seeded fault plan; the zero spec injects
// nothing. Decisions are a pure function of (seed, batch, attempt), so
// a plan replays identically run after run.
func NewFaultPlan(seed int64, spec FaultSpec) *FaultPlan {
	return driver.NewFaultPlan(seed, spec)
}

// ErrJobDeadline settles a job whose WithJobDeadline expired under
// DegradeFail; it wraps context.DeadlineExceeded.
var ErrJobDeadline = engine.ErrDeadline

// ErrEngineClosed is returned by Engine.Submit after Close.
var ErrEngineClosed = engine.ErrClosed

// Engine construction options.
var (
	// WithModel selects the IPU generation (GC200, BOW).
	WithModel = engine.WithModel
	// WithIPUs sets the modeled device count.
	WithIPUs = engine.WithIPUs
	// WithTilesPerIPU restricts tiles per device.
	WithTilesPerIPU = engine.WithTilesPerIPU
	// WithKernel configures the on-tile codelet.
	WithKernel = engine.WithKernel
	// WithPartition toggles graph-based sequence reuse.
	WithPartition = engine.WithPartition
	// WithSeqBudget caps a partition's sequence payload.
	WithSeqBudget = engine.WithSeqBudget
	// WithMaxBatchJobs caps comparisons per batch.
	WithMaxBatchJobs = engine.WithMaxBatchJobs
	// WithBatchOverhead sets the modeled per-batch host cost.
	WithBatchOverhead = engine.WithBatchOverhead
	// WithDedupExtensions aligns each unique (pair, seed) extension once
	// per job and fans the result out to duplicates.
	WithDedupExtensions = engine.WithDedupExtensions
	// WithResultCache shares a bounded LRU of finished extensions across
	// every job the engine serves (implies dedup); hit/miss/evict
	// counters surface in EngineStats.
	WithResultCache = engine.WithResultCache
	// WithTraceback enables CIGAR emission for every job: results carry
	// their edit scripts and reports expose peak traceback memory.
	WithTraceback = engine.WithTraceback
	// WithTraceMinScore gates traceback behind a score cutoff:
	// comparisons scoring below it deliver score-only results and skip
	// the recording cost entirely — hit-sparse pipelines pay traceback
	// only for the alignments they keep. Traced/skipped counters
	// surface in EngineStats and every report.
	WithTraceMinScore = engine.WithTraceMinScore
	// WithTraceMode selects the recording strategy for traced
	// comparisons (TraceModeAuto, TraceModeReplay, TraceModeFused).
	// Fused single-pass recording and the two-pass replay produce
	// bit-identical alignments; they differ in SRAM charging and
	// modeled time.
	WithTraceMode = engine.WithTraceMode
	// WithKernelTier selects the DP arithmetic width (TierWide,
	// TierNarrow, TierAuto). Results are bit-identical across tiers;
	// TierAuto halves the per-thread DP working set whenever the
	// scoring regime provably cannot saturate int16, letting the
	// partitioner admit larger sequences per tile. Tier counters
	// surface in EngineStats.
	WithKernelTier = engine.WithKernelTier
	// WithRetry re-issues batches whose execution failed transiently,
	// with capped exponential backoff: max retries per batch, budget
	// retries per job (0 = uncapped).
	WithRetry = engine.WithRetry
	// WithRetryBackoff shapes the retry delay (base, ceiling).
	WithRetryBackoff = engine.WithRetryBackoff
	// WithJobDeadline bounds every submission's wall-clock completion;
	// near the deadline idle executors hedge the slowest outstanding
	// batch (first result wins), and an expired job settles per
	// WithDegradedMode.
	WithJobDeadline = engine.WithJobDeadline
	// WithDegradedMode selects how exhausted batches complete:
	// DegradeFail, DegradeFallback or DegradePartial.
	WithDegradedMode = engine.WithDegradedMode
	// WithFaultPlan installs seeded fault injection at the batch
	// execution boundary (chaos testing; see NewFaultPlan).
	WithFaultPlan = engine.WithFaultPlan
	// WithQueueDepth bounds in-flight submissions (backpressure).
	WithQueueDepth = engine.WithQueueDepth
	// WithExecutors sets the host-side executor pool width.
	WithExecutors = engine.WithExecutors
	// WithIPUConfig replaces the whole driver configuration at once.
	WithIPUConfig = engine.WithDriverConfig
)

// NewEngine starts a persistent asynchronous alignment engine. Close it
// when done:
//
//	eng := xdropipu.NewEngine(xdropipu.WithIPUs(4))
//	defer eng.Close()
//	job, err := eng.Submit(ctx, dataset)
//	for u := range job.Results() { ... } // streamed batch results
//	report, err := job.Wait(ctx)
func NewEngine(opts ...EngineOption) *Engine {
	return engine.New(opts...)
}

// RunOnIPU aligns every comparison of a dataset on the simulated IPU
// system and returns the report (results, modeled times, traffic). It is
// the simple synchronous path: a throwaway Engine serving exactly one
// submission. Long-lived callers with concurrent work should hold a
// NewEngine instead.
func RunOnIPU(d *Dataset, cfg IPUConfig) (*IPUReport, error) {
	return engine.RunOnce(context.Background(), cfg, d)
}

// Networked service: the HTTP front-end over a pool of engine shards,
// and the wire client that preserves the submit/stream/join contract
// across it. Reports assembled by the client are bit-identical to
// in-process Engine.Submit on the same workload and options.
type (
	// Service is the multi-tenant streaming alignment service: POST
	// /v1/jobs submits a workload and streams NDJSON results, jobs route
	// to shards by content affinity, admission is fair-share + load
	// shedding (429 with Retry-After), and delivered batches replay from
	// a bounded window for resumable streams.
	Service = service.Server
	// ServiceConfig shapes a Service (shards, engine options, admission
	// rates, replay window, linger).
	ServiceConfig = service.Config
	// ServiceStats is the GET /v1/stats payload: per-tenant counters,
	// per-shard engine stats and the aggregated autoscaling signals.
	ServiceStats = service.StatsReply
	// ServiceClient talks to a Service over HTTP.
	ServiceClient = serviceclient.Client
	// ServiceClientOption configures NewServiceClient (tenant identity,
	// stream linger, transport retry).
	ServiceClientOption = serviceclient.Option
	// RemoteJob is a submitted workload's wire-side handle, mirroring
	// Job: Results streams EngineUpdates, Wait joins for the IPUReport.
	RemoteJob = serviceclient.RemoteJob
)

// NewService starts the HTTP alignment service and its engine shards;
// serve its Handler with an http.Server and Close it when done.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// NewServiceClient returns a client for the service at base
// (scheme://host:port).
func NewServiceClient(base string, opts ...ServiceClientOption) *ServiceClient {
	return serviceclient.New(base, opts...)
}

// Service client options.
var (
	// WithServiceTenant sets the client's tenant identity (fair-share
	// admission key).
	WithServiceTenant = serviceclient.WithTenant
	// WithStreamLinger asks the server to keep a disconnected job alive
	// that long so the client can resume its stream.
	WithStreamLinger = serviceclient.WithStreamLinger
	// WithTransportRetry sets transport attempts per request.
	WithTransportRetry = serviceclient.WithTransportRetry
	// WithTransportBackoff shapes the jittered retry backoff.
	WithTransportBackoff = serviceclient.WithTransportBackoff
	// WithHTTPClient substitutes the underlying *http.Client.
	WithHTTPClient = serviceclient.WithHTTPClient
)

// EncodeDataset serializes a dataset into the service's binary wire
// format (the Content-Type WireDatasetContentType payload).
func EncodeDataset(d *Dataset) ([]byte, error) { return wire.EncodeDataset(d) }

// DecodeDataset reverses EncodeDataset; the restored dataset preserves
// spans and content digests, so routing and cache identity survive.
func DecodeDataset(p []byte) (*Dataset, error) { return wire.DecodeDataset(p) }

// Wire content types.
const (
	// WireDatasetContentType is the binary workload payload.
	WireDatasetContentType = wire.ContentTypeDataset
	// WireFastaContentType is the plain-FASTA submission path.
	WireFastaContentType = wire.ContentTypeFasta
)

// Pipelines.
type (
	// ELBAConfig configures the assembler pipeline (§2.3).
	ELBAConfig = elba.Config
	// ELBAResult is an assembly outcome.
	ELBAResult = elba.Result
	// PASTISConfig configures the protein homology pipeline (§2.4).
	PASTISConfig = pastis.Config
	// PASTISResult is a homology search outcome.
	PASTISResult = pastis.Result
	// Backend executes a pipeline's alignment phase (IPU, CPU or GPU).
	Backend = backend.Backend
	// IPUBackend runs alignments on the simulated IPU system.
	IPUBackend = backend.IPU
	// CPUBackend runs the SeqAn/ksw2/genometools-like CPU baselines.
	CPUBackend = backend.CPU
	// GPUBackend runs the LOGAN-like GPU baseline.
	GPUBackend = backend.GPU
)

// AssembleELBA runs the ELBA pipeline over a read set.
func AssembleELBA(reads [][]byte, cfg ELBAConfig) (*ELBAResult, error) {
	return elba.Assemble(reads, cfg)
}

// SearchPASTIS runs the PASTIS pipeline over a protein set.
func SearchPASTIS(seqs [][]byte, cfg PASTISConfig) (*PASTISResult, error) {
	return pastis.Search(seqs, cfg)
}

// Baselines (§5.1).
type BaselineResult = baselines.Result

// SeqAn runs the SeqAn-like CPU baseline on a dataset.
func SeqAn(d *Dataset, x int) *BaselineResult {
	return baselines.SeqAn(d, x, platform.EPYC7763)
}

// Ksw2 runs the ksw2-like affine-gap CPU baseline.
func Ksw2(d *Dataset, x int) *BaselineResult {
	return baselines.Ksw2(d, x, platform.EPYC7763)
}

// Logan runs the LOGAN-like GPU baseline.
func Logan(d *Dataset, x, gpus int) *BaselineResult {
	return baselines.Logan(d, x, platform.A100, gpus)
}
